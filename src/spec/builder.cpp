#include "spec/builder.hpp"

#include "util/assert.hpp"

namespace rcons::spec {

TypeBuilder::TypeBuilder(std::string name) { type_.name_ = std::move(name); }

ValueId TypeBuilder::value(std::string_view name) {
  if (auto existing = type_.find_value(name)) return *existing;
  type_.value_names_.emplace_back(name);
  grow_tables();
  return type_.value_count() - 1;
}

OpId TypeBuilder::op(std::string_view name) {
  if (auto existing = type_.find_op(name)) return *existing;
  type_.op_names_.emplace_back(name);
  grow_tables();
  return type_.op_count() - 1;
}

ResponseId TypeBuilder::response(std::string_view name) {
  if (auto existing = type_.find_response(name)) return *existing;
  type_.response_names_.emplace_back(name);
  return type_.response_count() - 1;
}

void TypeBuilder::grow_tables() {
  // Rebuild the (row-major by value) table preserving existing entries;
  // table_values_/table_ops_ remember the dimensions delta_ is currently
  // laid out for, so growth is unambiguous.
  const std::size_t v_now = static_cast<std::size_t>(type_.value_count());
  const std::size_t o_now = static_cast<std::size_t>(type_.op_count());
  const std::size_t v_old = table_values_;
  const std::size_t o_old = table_ops_;
  std::vector<Effect> old_delta = std::move(type_.delta_);
  std::vector<bool> old_defined = std::move(defined_);
  type_.delta_.assign(v_now * o_now, Effect{});
  defined_.assign(v_now * o_now, false);
  for (std::size_t v = 0; v < v_old; ++v) {
    for (std::size_t o = 0; o < o_old; ++o) {
      type_.delta_[v * o_now + o] = old_delta[v * o_old + o];
      defined_[v * o_now + o] = old_defined[v * o_old + o];
    }
  }
  table_values_ = v_now;
  table_ops_ = o_now;
}

void TypeBuilder::set_transition(ValueId v, OpId op, ValueId next,
                                 ResponseId resp) {
  const std::size_t idx = static_cast<std::size_t>(v) *
                              static_cast<std::size_t>(type_.op_count()) +
                          static_cast<std::size_t>(op);
  type_.delta_[idx] = Effect{resp, next};
  defined_[idx] = true;
}

TypeBuilder::TransitionSetter TypeBuilder::on(std::string_view value,
                                              std::string_view op) {
  const auto v = type_.find_value(value);
  const auto o = type_.find_op(op);
  RCONS_CHECK_MSG(v.has_value(), "undeclared value '", std::string(value),
                  "' in type ", type_.name());
  RCONS_CHECK_MSG(o.has_value(), "undeclared op '", std::string(op),
                  "' in type ", type_.name());
  // Default: self-loop returning "ok" (overridable via then/returns). The
  // "ok" response is interned lazily in build() so that types where every
  // transition sets an explicit response do not carry a dead "ok" (the
  // linter's TS005 flags declared-but-never-produced responses).
  set_transition(*v, *o, *v, kPendingDefaultResponse);
  return TransitionSetter(this, *v, *o);
}

TypeBuilder::TransitionSetter& TypeBuilder::TransitionSetter::then(
    std::string_view next_value) {
  const auto next = builder_->type_.find_value(next_value);
  RCONS_CHECK_MSG(next.has_value(), "undeclared value '",
                  std::string(next_value), "' in type ",
                  builder_->type_.name());
  const std::size_t idx =
      static_cast<std::size_t>(v_) *
          static_cast<std::size_t>(builder_->type_.op_count()) +
      static_cast<std::size_t>(op_);
  builder_->type_.delta_[idx].next_value = *next;
  return *this;
}

TypeBuilder::TransitionSetter& TypeBuilder::TransitionSetter::returns(
    std::string_view resp) {
  const ResponseId r = builder_->response(resp);
  const std::size_t idx =
      static_cast<std::size_t>(v_) *
          static_cast<std::size_t>(builder_->type_.op_count()) +
      static_cast<std::size_t>(op_);
  builder_->type_.delta_[idx].response = r;
  return *this;
}

OpId TypeBuilder::make_read_op(std::string_view name) {
  const OpId read = op(name);
  for (ValueId v = 0; v < type_.value_count(); ++v) {
    const ResponseId r = response(type_.value_name(v));
    set_transition(v, read, v, r);
  }
  return read;
}

void TypeBuilder::default_self_loop(std::string_view resp) {
  const ResponseId r = response(resp);
  for (ValueId v = 0; v < type_.value_count(); ++v) {
    for (OpId op = 0; op < type_.op_count(); ++op) {
      const std::size_t idx = static_cast<std::size_t>(v) *
                                  static_cast<std::size_t>(type_.op_count()) +
                              static_cast<std::size_t>(op);
      if (!defined_[idx]) {
        set_transition(v, op, v, r);
      }
    }
  }
}

ObjectType TypeBuilder::build() const {
  RCONS_CHECK_MSG(type_.value_count() > 0, "type ", type_.name(),
                  " has no values");
  RCONS_CHECK_MSG(type_.op_count() > 0, "type ", type_.name(), " has no ops");
  ObjectType built = type_;
  for (ValueId v = 0; v < type_.value_count(); ++v) {
    for (OpId op = 0; op < type_.op_count(); ++op) {
      const std::size_t idx = static_cast<std::size_t>(v) *
                                  static_cast<std::size_t>(type_.op_count()) +
                              static_cast<std::size_t>(op);
      RCONS_CHECK_MSG(defined_[idx], "type ", type_.name(),
                      ": missing transition for value '", type_.value_name(v),
                      "' op '", type_.op_name(op), "'");
      if (built.delta_[idx].response == kPendingDefaultResponse) {
        // Intern the default "ok" now that we know it is actually used.
        if (auto existing = built.find_response("ok")) {
          built.delta_[idx].response = *existing;
        } else {
          built.response_names_.emplace_back("ok");
          built.delta_[idx].response = built.response_count() - 1;
        }
      }
    }
  }
  return built;
}

}  // namespace rcons::spec
