// Bit-packed, branch-free re-encodings of ObjectType delta tables.
//
// ObjectType::apply is the single hottest call in every exhaustive engine:
// it bounds-checks both indices, multiplies by op_count, and indirects
// through a vector of two-int Effects. A PackedDelta is the same total
// function delta(v, op) laid out for the hot path instead: the key is the
// dense perfect hash (v << op_bits) | op — op_bits = ceil(log2 op_count),
// so every valid (value, op) pair maps to a distinct slot and the lookup
// is one shift, one OR, and one load — and the entry packs the Effect as
// (response << value_bits) | next_value in one 32-bit word.
//
// build_packed_delta re-encodes a type at runtime; the rcons_codegen tool
// emits the same tables as compiled-in constants (src/codegen/), matched
// back to runtime types by delta_fingerprint. Both sources are definition-
// ally entry-for-entry equal to ObjectType::apply — the codegen tests pin
// this exhaustively — which is what makes the AOT exec backend's
// bit-identity to the interpreter a structural property (DESIGN.md §14).
#pragma once

#include <cstdint>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::spec {

struct PackedDelta {
  int value_count = 0;
  int op_count = 0;
  int response_count = 0;
  /// Key layout: slot = (v << op_bits) | op; op_bits = ceil(log2 op_count)
  /// (min 1). Slots with op >= op_count are padding and never read.
  int op_bits = 0;
  /// Entry layout: (response << value_bits) | next_value; value_bits =
  /// ceil(log2 value_count) (min 1).
  int value_bits = 0;
  std::vector<std::uint32_t> table;  // value_count << op_bits entries

  std::uint32_t raw(ValueId v, OpId op) const {
    return table[(static_cast<std::size_t>(v) << op_bits) |
                 static_cast<std::size_t>(op)];
  }
  ResponseId response_of(std::uint32_t entry) const {
    return static_cast<ResponseId>(entry >> value_bits);
  }
  ValueId next_value_of(std::uint32_t entry) const {
    return static_cast<ValueId>(entry &
                                ((std::uint32_t{1} << value_bits) - 1u));
  }
  Effect effect(ValueId v, OpId op) const {
    const std::uint32_t entry = raw(v, op);
    return Effect{response_of(entry), next_value_of(entry)};
  }
};

/// Re-encodes `type`'s delta table. The result satisfies
/// effect(v, op) == type.apply(v, op) for every in-range pair.
PackedDelta build_packed_delta(const ObjectType& type);

/// Structural fingerprint of a type's sequential specification: the
/// value/op/response counts and every delta entry in row-major order.
/// Names do NOT contribute, so a renamed-but-identical machine (or one
/// parsed from a .type file) matches the stepper compiled from the catalog
/// original. Fingerprint equality is a 64-bit filter, not a proof —
/// consumers (codegen::find_compiled) re-verify entry-for-entry.
std::uint64_t delta_fingerprint(const ObjectType& type);

/// True iff `packed` agrees with type.apply on every (value, op) pair and
/// carries exactly the type's counts. The registry runs this before
/// handing out a compiled table, so a stale generated file can cause a
/// miss (runtime rebuild) but never a wrong step.
bool packed_matches_type(const PackedDelta& packed, const ObjectType& type);

}  // namespace rcons::spec
