#include "spec/paper_types.hpp"

#include <string>

#include "spec/builder.hpp"
#include "util/assert.hpp"

namespace rcons::spec {

namespace {
std::string sxi(int x, int i) {
  return "s_" + std::to_string(x) + "_" + std::to_string(i);
}
}  // namespace

ObjectType make_tnn(int n, int nprime) {
  RCONS_CHECK_MSG(n > nprime && nprime >= 1, "make_tnn requires n > n' >= 1");
  TypeBuilder b("T_" + std::to_string(n) + "_" + std::to_string(nprime));

  b.value("s");
  for (int x = 0; x <= 1; ++x) {
    for (int i = 1; i <= n - 1; ++i) b.value(sxi(x, i));
  }
  b.value("s_bot");

  b.op("op_0");
  b.op("op_1");
  b.op("op_R");

  for (int x = 0; x <= 1; ++x) {
    const std::string opn = "op_" + std::to_string(x);
    // op_x on s -> s_{x,1}, returns x.
    b.on("s", opn).then(sxi(x, 1)).returns(std::to_string(x));
    // op_x on s_{y,i} advances the counter and returns y, wiping to s_bot
    // from s_{y,n-1}.
    for (int y = 0; y <= 1; ++y) {
      for (int i = 1; i <= n - 1; ++i) {
        const std::string next = i < n - 1 ? sxi(y, i + 1) : "s_bot";
        b.on(sxi(y, i), opn).then(next).returns(std::to_string(y));
      }
    }
    b.on("s_bot", opn).returns("bot");
  }

  // op_R: a read unless the counter exceeds n', in which case it breaks the
  // object (returns bot and wipes to s_bot).
  b.on("s", "op_R").returns("s");
  for (int y = 0; y <= 1; ++y) {
    for (int i = 1; i <= n - 1; ++i) {
      if (i <= nprime) {
        b.on(sxi(y, i), "op_R").returns(sxi(y, i));
      } else {
        b.on(sxi(y, i), "op_R").then("s_bot").returns("bot");
      }
    }
  }
  b.on("s_bot", "op_R").returns("bot");

  ObjectType t = b.build();
  // T_{n,n'} must not be readable: op_R fails injectivity-or-preservation
  // whenever some s_{y,i} with i > n' exists (i.e. n' < n-1); for
  // n' = n-1 op_R *is* a Read and the type is readable by design.
  if (nprime < n - 1) {
    RCONS_CHECK_MSG(!t.is_readable(), "T_{n,n'} should not be readable");
  }
  return t;
}

ObjectType make_erase_counter(const EraseCounterOptions& options) {
  const int k = options.count_states;
  RCONS_CHECK(k >= 1);
  std::string name = "erase_counter_k" + std::to_string(k);
  if (!options.wipe_at_overflow) name += "_sat";
  if (!options.with_erase) name += "_noe";
  if (options.erase_only_a) name += "_easym";
  TypeBuilder b(std::move(name));

  const auto letter_state = [](char letter, int i) {
    return std::string(1, letter) + "_" + std::to_string(i);
  };

  b.value("u");
  for (char letter : {'A', 'B'}) {
    for (int i = 1; i <= k; ++i) b.value(letter_state(letter, i));
  }
  b.value("bot");

  b.op("a");
  b.op("b");
  if (options.with_erase) b.op("e");

  // Team operations: the first of a/b applied to u fixes the letter; both
  // then advance the letter's counter.
  b.on("u", "a").then(letter_state('A', 1)).returns("first");
  b.on("u", "b").then(letter_state('B', 1)).returns("first");
  for (char letter : {'A', 'B'}) {
    const std::string saw = std::string("saw") + letter;
    for (int i = 1; i <= k; ++i) {
      const std::string next =
          i < k ? letter_state(letter, i + 1)
                : (options.wipe_at_overflow ? std::string("bot")
                                            : letter_state(letter, k));
      b.on(letter_state(letter, i), "a").then(next).returns(saw);
      b.on(letter_state(letter, i), "b").then(next).returns(saw);
    }
  }
  b.on("bot", "a").returns("bot");
  b.on("bot", "b").returns("bot");

  if (options.with_erase) {
    // e erases the counter back to u; its response reveals the erased state.
    b.on("u", "e").returns("e_u");
    for (char letter : {'A', 'B'}) {
      for (int i = 1; i <= k; ++i) {
        const std::string state = letter_state(letter, i);
        auto t = b.on(state, "e");
        t.returns("e_" + state);
        if (letter == 'A' || !options.erase_only_a) t.then("u");
      }
    }
    b.on("bot", "e").returns("bot");
  }

  b.make_read_op("read");
  ObjectType t = b.build();
  RCONS_CHECK(t.is_readable());
  return t;
}

namespace {

struct Edge {
  int next0, resp0;  // o0: successor, response
  int next1, resp1;  // o1: successor, response
};

ObjectType build_searched_machine(std::string name, const Edge* edges,
                                  int values) {
  TypeBuilder b(std::move(name));
  for (int v = 0; v < values; ++v) b.value("v" + std::to_string(v));
  b.op("o0");
  b.op("o1");
  for (int v = 0; v < values; ++v) {
    const Edge& e = edges[v];
    b.on("v" + std::to_string(v), "o0")
        .then("v" + std::to_string(e.next0))
        .returns("x" + std::to_string(e.resp0));
    b.on("v" + std::to_string(v), "o1")
        .then("v" + std::to_string(e.next1))
        .returns("x" + std::to_string(e.resp1));
  }
  b.make_read_op("read");
  ObjectType t = b.build();
  RCONS_CHECK(t.is_readable());
  return t;
}

}  // namespace

ObjectType make_xn(int n) {
  RCONS_CHECK_MSG(n == 4 || n == 5,
                  "only the n = 4 and n = 5 instances have verified "
                  "machines; see examples/xn_search to hunt for others");
  // Both machines were discovered by the randomized checker-guided search
  // (hierarchy/search, examples/xn_search; 8 values, 2 team ops + read)
  // and verified by the exhaustive deciders:
  //   X_4 (seed 3): 4-discerning, not 5-discerning; 2-recording, not
  //     3-recording  ->  consensus number 4, recoverable consensus
  //     number 2.
  //   X_5 (seed 2): 5-discerning, not 6-discerning; 3-recording, not
  //     4-recording  ->  consensus number 5, recoverable consensus
  //     number 3.
  // Exactly the profile of DFFR's X_n (cons n, rcons n-2), witnessing the
  // paper's headline corollary. The machines are opaque (searched, not
  // designed); the tests pin every claimed level, and data/x4.type /
  // data/x5.type carry them in the interchange format.
  if (n == 4) {
    static constexpr Edge kX4[8] = {
        {1, 3, 3, 5}, {6, 4, 4, 2}, {5, 5, 2, 0}, {7, 0, 1, 1},
        {0, 1, 7, 3}, {6, 1, 1, 3}, {7, 5, 5, 3}, {4, 2, 3, 4},
    };
    return build_searched_machine("X4_searched", kX4, 8);
  }
  static constexpr Edge kX5[8] = {
      {5, 1, 7, 4}, {0, 2, 6, 2}, {1, 4, 2, 3}, {1, 4, 6, 4},
      {4, 3, 0, 0}, {5, 1, 4, 2}, {7, 3, 1, 3}, {2, 0, 7, 1},
  };
  return build_searched_machine("X5_searched", kX5, 8);
}

}  // namespace rcons::spec
