#include "spec/serialize.hpp"

#include <sstream>
#include <vector>

#include "spec/builder.hpp"
#include "util/strings.hpp"

namespace rcons::spec {

namespace {

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

ParseResult fail(int line, std::string message) {
  ParseResult r;
  r.error = std::move(message);
  r.error_line = line;
  return r;
}

}  // namespace

ParseResult parse_type(std::string_view text) {
  std::optional<TypeBuilder> builder;
  int line_no = 0;

  // Track declarations so transitions can be validated with good errors.
  std::vector<std::string> values;
  std::vector<std::string> ops;

  const auto declared = [](const std::vector<std::string>& names,
                           const std::string& name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };

  for (const auto& raw_line : split(std::string(text), '\n')) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> tok = tokens_of(line);

    if (tok[0] == "type") {
      if (builder.has_value()) {
        return fail(line_no, "duplicate 'type' directive");
      }
      if (tok.size() != 2) return fail(line_no, "usage: type <name>");
      builder.emplace(tok[1]);
      continue;
    }
    if (!builder.has_value()) {
      return fail(line_no, "the first directive must be 'type <name>'");
    }

    if (tok[0] == "value") {
      if (tok.size() != 2) return fail(line_no, "usage: value <name>");
      if (declared(values, tok[1])) {
        return fail(line_no, "duplicate value '" + tok[1] + "'");
      }
      values.push_back(tok[1]);
      builder->value(tok[1]);
      continue;
    }
    if (tok[0] == "op") {
      if (tok.size() != 2) return fail(line_no, "usage: op <name>");
      if (declared(ops, tok[1])) {
        return fail(line_no, "duplicate op '" + tok[1] + "'");
      }
      ops.push_back(tok[1]);
      builder->op(tok[1]);
      continue;
    }
    if (tok[0] == "readop") {
      if (tok.size() != 2) return fail(line_no, "usage: readop <name>");
      if (values.empty()) {
        return fail(line_no, "readop must follow the value declarations");
      }
      ops.push_back(tok[1]);
      builder->make_read_op(tok[1]);
      continue;
    }

    // Transition: <value> <op> -> <next> / <response>
    if (tok.size() == 6 && tok[2] == "->" && tok[4] == "/") {
      if (!declared(values, tok[0])) {
        return fail(line_no, "undeclared value '" + tok[0] + "'");
      }
      if (!declared(ops, tok[1])) {
        return fail(line_no, "undeclared op '" + tok[1] + "'");
      }
      if (!declared(values, tok[3])) {
        return fail(line_no, "undeclared value '" + tok[3] + "'");
      }
      builder->on(tok[0], tok[1]).then(tok[3]).returns(tok[5]);
      continue;
    }

    return fail(line_no, "unrecognized directive '" + tok[0] + "'");
  }

  if (!builder.has_value()) {
    return fail(line_no, "empty definition: missing 'type <name>'");
  }
  if (values.empty()) return fail(line_no, "no values declared");
  if (ops.empty()) return fail(line_no, "no ops declared");

  // Validate totality ourselves (TypeBuilder::build aborts on holes, which
  // would be hostile for user-supplied text).
  // Rebuild declared ops' transition coverage from the builder is private;
  // instead probe via a dry check: attempt build in a child process is
  // overkill, so replicate the check by parsing our own emitted text is
  // circular. Track coverage here:
  // (simplest: re-scan the text for transitions + readops)
  std::vector<std::vector<bool>> covered(
      values.size(), std::vector<bool>(ops.size(), false));
  int scan_line = 0;
  for (const auto& raw_line : split(std::string(text), '\n')) {
    ++scan_line;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> tok = tokens_of(line);
    if (tok[0] == "readop" && tok.size() == 2) {
      for (std::size_t v = 0; v < values.size(); ++v) {
        for (std::size_t o = 0; o < ops.size(); ++o) {
          if (ops[o] == tok[1]) covered[v][o] = true;
        }
      }
    } else if (tok.size() == 6 && tok[2] == "->" && tok[4] == "/") {
      for (std::size_t v = 0; v < values.size(); ++v) {
        for (std::size_t o = 0; o < ops.size(); ++o) {
          if (values[v] == tok[0] && ops[o] == tok[1]) covered[v][o] = true;
        }
      }
    }
  }
  for (std::size_t v = 0; v < values.size(); ++v) {
    for (std::size_t o = 0; o < ops.size(); ++o) {
      if (!covered[v][o]) {
        return fail(line_no, "missing transition for value '" + values[v] +
                                 "' op '" + ops[o] + "'");
      }
    }
  }

  ParseResult result;
  result.type = builder->build();
  return result;
}

std::string serialize_type(const ObjectType& type) {
  std::ostringstream oss;
  oss << "# " << type.value_count() << " values, " << type.op_count()
      << " ops" << (type.is_readable() ? " (readable)" : "") << "\n";
  oss << "type " << type.name() << "\n";
  for (ValueId v = 0; v < type.value_count(); ++v) {
    oss << "value " << type.value_name(v) << "\n";
  }
  for (OpId op = 0; op < type.op_count(); ++op) {
    oss << "op " << type.op_name(op) << "\n";
  }
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      const Effect& e = type.apply(v, op);
      oss << type.value_name(v) << " " << type.op_name(op) << " -> "
          << type.value_name(e.next_value) << " / "
          << type.response_name(e.response) << "\n";
    }
  }
  return oss.str();
}

}  // namespace rcons::spec
