#include "spec/serialize.hpp"

#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "spec/builder.hpp"
#include "util/strings.hpp"

namespace rcons::spec {

namespace {

std::vector<std::string> tokens_of(std::string_view line) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : line) {
    if (c == ' ' || c == '\t') {
      if (!current.empty()) {
        tokens.push_back(std::move(current));
        current.clear();
      }
    } else {
      current += c;
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

ParseResult fail(int line, std::string message) {
  ParseResult r;
  r.error = std::move(message);
  r.error_line = line;
  return r;
}

}  // namespace

ParseResult parse_type(std::string_view text) {
  std::optional<TypeBuilder> builder;
  int line_no = 0;

  // Track declarations so transitions can be validated with good errors.
  std::vector<std::string> values;
  std::vector<std::string> ops;
  // Coverage of (value, op) pairs, keyed by name, valued by the line that
  // defined the pair (0 for readop-generated rows). Doubles as the totality
  // check and the duplicate-row detector. Tracking incrementally (rather
  // than re-scanning) matches TypeBuilder semantics exactly: a readop only
  // generates transitions for values declared *before* it, so a value
  // declared after a readop is correctly reported as missing transitions
  // instead of slipping past the check and aborting in build().
  std::map<std::pair<std::string, std::string>, int> covered;

  std::vector<DuplicateRow> duplicates;
  std::optional<std::string> initial_name;

  const auto declared = [](const std::vector<std::string>& names,
                           const std::string& name) {
    for (const auto& n : names) {
      if (n == name) return true;
    }
    return false;
  };

  for (const auto& raw_line : split(std::string(text), '\n')) {
    ++line_no;
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const std::vector<std::string> tok = tokens_of(line);

    if (tok[0] == "type") {
      if (builder.has_value()) {
        return fail(line_no, "duplicate 'type' directive");
      }
      if (tok.size() != 2) return fail(line_no, "usage: type <name>");
      builder.emplace(tok[1]);
      continue;
    }
    if (!builder.has_value()) {
      return fail(line_no, "the first directive must be 'type <name>'");
    }

    if (tok[0] == "value") {
      if (tok.size() != 2) return fail(line_no, "usage: value <name>");
      if (declared(values, tok[1])) {
        return fail(line_no, "duplicate value '" + tok[1] + "'");
      }
      values.push_back(tok[1]);
      builder->value(tok[1]);
      continue;
    }
    if (tok[0] == "op") {
      if (tok.size() != 2) return fail(line_no, "usage: op <name>");
      if (declared(ops, tok[1])) {
        return fail(line_no, "duplicate op '" + tok[1] + "'");
      }
      ops.push_back(tok[1]);
      builder->op(tok[1]);
      continue;
    }
    if (tok[0] == "initial") {
      if (tok.size() != 2) return fail(line_no, "usage: initial <value>");
      if (!declared(values, tok[1])) {
        return fail(line_no, "undeclared value '" + tok[1] + "'");
      }
      if (initial_name.has_value()) {
        return fail(line_no, "duplicate 'initial' directive");
      }
      initial_name = tok[1];
      continue;
    }
    if (tok[0] == "readop") {
      if (tok.size() != 2) return fail(line_no, "usage: readop <name>");
      if (values.empty()) {
        return fail(line_no, "readop must follow the value declarations");
      }
      if (declared(ops, tok[1])) {
        return fail(line_no, "duplicate op '" + tok[1] + "'");
      }
      ops.push_back(tok[1]);
      builder->make_read_op(tok[1]);
      for (const auto& v : values) covered[{v, tok[1]}] = 0;
      continue;
    }

    // Transition: <value> <op> -> <next> / <response>
    if (tok.size() == 6 && tok[2] == "->" && tok[4] == "/") {
      if (!declared(values, tok[0])) {
        return fail(line_no, "undeclared value '" + tok[0] + "'");
      }
      if (!declared(ops, tok[1])) {
        return fail(line_no, "undeclared op '" + tok[1] + "'");
      }
      if (!declared(values, tok[3])) {
        return fail(line_no, "undeclared value '" + tok[3] + "'");
      }
      const auto [it, inserted] = covered.try_emplace({tok[0], tok[1]},
                                                      line_no);
      if (!inserted) {
        duplicates.push_back(DuplicateRow{line_no, it->second, tok[0],
                                          tok[1]});
        it->second = line_no;
      }
      builder->on(tok[0], tok[1]).then(tok[3]).returns(tok[5]);
      continue;
    }

    return fail(line_no, "unrecognized directive '" + tok[0] + "'");
  }

  if (!builder.has_value()) {
    return fail(line_no, "empty definition: missing 'type <name>'");
  }
  if (values.empty()) return fail(line_no, "no values declared");
  if (ops.empty()) return fail(line_no, "no ops declared");

  // Validate totality ourselves (TypeBuilder::build aborts on holes, which
  // would be hostile for user-supplied text).
  for (const auto& v : values) {
    for (const auto& o : ops) {
      if (!covered.count({v, o})) {
        return fail(line_no, "missing transition for value '" + v + "' op '" +
                                 o + "'");
      }
    }
  }

  ParseResult result;
  result.type = builder->build();
  result.duplicates = std::move(duplicates);
  if (initial_name.has_value()) {
    result.declared_initial = result.type->find_value(*initial_name);
  }
  return result;
}

std::string serialize_type(const ObjectType& type) {
  std::ostringstream oss;
  oss << "# " << type.value_count() << " values, " << type.op_count()
      << " ops" << (type.is_readable() ? " (readable)" : "") << "\n";
  oss << "type " << type.name() << "\n";
  for (ValueId v = 0; v < type.value_count(); ++v) {
    oss << "value " << type.value_name(v) << "\n";
  }
  for (OpId op = 0; op < type.op_count(); ++op) {
    oss << "op " << type.op_name(op) << "\n";
  }
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      const Effect& e = type.apply(v, op);
      oss << type.value_name(v) << " " << type.op_name(op) << " -> "
          << type.value_name(e.next_value) << " / "
          << type.response_name(e.response) << "\n";
    }
  }
  return oss.str();
}

}  // namespace rcons::spec
