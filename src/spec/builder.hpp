// Fluent construction of ObjectType state machines.
//
// Usage:
//   TypeBuilder b("test_and_set");
//   b.value("0"); b.value("1");
//   b.op("tas"); b.op("read");
//   b.on("0", "tas").then("1").returns("0");
//   b.on("1", "tas").then("1").returns("1");
//   b.make_read_op("read");          // adds read transitions for all values
//   ObjectType t = b.build();        // validates totality
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::spec {

class TypeBuilder {
 public:
  explicit TypeBuilder(std::string name);

  /// Declares a value; returns its id. Re-declaring returns the existing id.
  ValueId value(std::string_view name);

  /// Declares an operation; returns its id.
  OpId op(std::string_view name);

  /// Declares (or interns) a response; returns its id.
  ResponseId response(std::string_view name);

  /// Transition setter with a small fluent helper.
  class TransitionSetter {
   public:
    TransitionSetter& then(std::string_view next_value);
    TransitionSetter& returns(std::string_view response);

   private:
    friend class TypeBuilder;
    TransitionSetter(TypeBuilder* b, ValueId v, OpId op)
        : builder_(b), v_(v), op_(op) {}
    TypeBuilder* builder_;
    ValueId v_;
    OpId op_;
  };

  /// Starts defining the transition for (value, op). Both must already be
  /// declared. Defaults: stays at the same value, returns response "ok".
  TransitionSetter on(std::string_view value, std::string_view op);

  /// Declares `name` as a Read operation: for every value v, the transition
  /// is v --name--> v returning a response equal to v's name.
  OpId make_read_op(std::string_view name);

  /// Fills every not-yet-defined transition with a self-loop returning the
  /// given response. Convenient for "dead" sink values.
  void default_self_loop(std::string_view response);

  /// Validates that every (value, op) pair has a transition and returns the
  /// immutable type. Aborts (RCONS_CHECK) on incomplete specifications.
  ObjectType build() const;

 private:
  friend class TransitionSetter;

  /// Sentinel response for transitions set by on() whose returns() was not
  /// (yet) called; replaced by an interned "ok" in build().
  static constexpr ResponseId kPendingDefaultResponse = -1;

  void set_transition(ValueId v, OpId op, ValueId next, ResponseId resp);

  ObjectType type_;
  // Tracks which (v, op) transitions were explicitly set.
  std::vector<bool> defined_;
  // Dimensions delta_/defined_ are currently laid out for.
  std::size_t table_values_ = 0;
  std::size_t table_ops_ = 0;
  void grow_tables();
};

}  // namespace rcons::spec
