// Catalog of classic shared-object types, built as explicit state machines.
//
// These are the baselines against which the paper's results are phrased:
//   * registers              — consensus number 1 (Herlihy)
//   * test&set, swap, queue,
//     fetch&add              — consensus number 2 (Herlihy); recoverable
//                              consensus number 1 (Golab for T&S; our
//                              checkers compute the rest)
//   * compare&swap           — consensus number infinity
//   * sticky objects         — consensus number infinity (Plotkin/Jayanti)
//   * m-consensus objects    — consensus number m
// Every type here has a Read operation unless documented otherwise, so the
// discerning/recording characterizations apply exactly.
#pragma once

#include "spec/object_type.hpp"

namespace rcons::spec {

/// Read/write register over a finite domain of `domain` values
/// ("r0".."r{domain-1}"); ops: write_i for each value, plus read.
ObjectType make_register(int domain);

/// Test-and-set bit: values {"0","1"}; ops {tas, read}. tas returns the old
/// value and sets the bit.
ObjectType make_test_and_set();

/// Swap register over `domain` values: swap_i writes value i and returns
/// the old value. Includes read.
ObjectType make_swap(int domain);

/// Fetch-and-add counter modulo `modulus`: op faa returns the old value and
/// increments (wrapping). Includes read. (Wrapping keeps the type finite;
/// algorithms in this repo never wrap.)
ObjectType make_fetch_and_add(int modulus);

/// Saturating fetch-and-increment: counts 0..max then sticks at max.
/// Includes read. Closer to the unbounded F&I's behaviour on short
/// executions than the wrapping version.
ObjectType make_fetch_and_increment_saturating(int max);

/// Compare-and-swap cell over `domain` values: ops cas_{a,b} for every
/// ordered pair (a != b), each returning the old value; plus read.
ObjectType make_cas(int domain);

/// Sticky register over `domain` values: initial value "undef"; write_i
/// sets the value only if still undefined and always returns the (possibly
/// pre-existing) defined value. Includes read. Consensus number infinity.
ObjectType make_sticky(int domain);

/// Binary sticky bit (2-value sticky register), the classic universal type.
ObjectType make_sticky_bit();

/// One-shot m-process consensus object for binary inputs: propose_0 /
/// propose_1 return the decided value; at most `m` proposals are accepted
/// before the object wedges to a "full" state that returns "bot". Includes
/// read. Has consensus number m (analogue of an m-ported consensus object).
ObjectType make_consensus_object(int m);

/// FIFO queue over items {"a","b"} with bounded capacity; ops enq_a, enq_b,
/// deq (returns "empty" on empty). No read (queues are not readable);
/// consensus number 2 via the classic two-process protocol.
ObjectType make_queue(int capacity);

/// Queue with a peek operation (readable-ish front observation). peek
/// returns the front item without removing it. Still not "readable" in the
/// formal sense (peek does not reveal the whole value), which makes it a
/// useful negative test for read-op detection.
ObjectType make_peek_queue(int capacity);

/// Queue with a TRUE Read operation (returns the entire contents without
/// changing them). Readability flips the checker semantics: for this type
/// the discerning/recording levels ARE the consensus numbers, so the
/// augmented queue's computed power is a fact, not an upper bound — a
/// sharp contrast with make_queue (see EXPERIMENTS.md E1 notes).
ObjectType make_readable_queue(int capacity);

/// LIFO stack over items {"a","b"} with bounded capacity; ops push_a,
/// push_b, pop (returns "empty" on empty). Not readable; consensus
/// number 2 classically.
ObjectType make_stack(int capacity);

}  // namespace rcons::spec
