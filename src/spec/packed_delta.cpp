#include "spec/packed_delta.hpp"

#include "util/assert.hpp"
#include "util/hashing.hpp"

namespace rcons::spec {

namespace {

/// ceil(log2 n) with a floor of 1 so shifts stay well-defined for
/// single-value / single-op machines.
int bits_for(int n) {
  int bits = 1;
  while ((1 << bits) < n) ++bits;
  return bits;
}

}  // namespace

PackedDelta build_packed_delta(const ObjectType& type) {
  RCONS_CHECK_MSG(type.value_count() >= 1 && type.op_count() >= 1 &&
                      type.response_count() >= 1,
                  "cannot pack an empty type");
  PackedDelta packed;
  packed.value_count = type.value_count();
  packed.op_count = type.op_count();
  packed.response_count = type.response_count();
  packed.op_bits = bits_for(type.op_count());
  packed.value_bits = bits_for(type.value_count());
  // Entries must round-trip through the packed word: responses use the
  // bits above value_bits. Types are tiny (the paper's machines have a
  // handful of values), so 32 bits is generous; check anyway.
  RCONS_CHECK_MSG(packed.value_bits + bits_for(type.response_count()) <= 32,
                  "type too large to pack: ", type.name());
  packed.table.assign(static_cast<std::size_t>(type.value_count())
                          << packed.op_bits,
                      0u);
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      const Effect& e = type.apply(v, op);
      packed.table[(static_cast<std::size_t>(v) << packed.op_bits) |
                   static_cast<std::size_t>(op)] =
          (static_cast<std::uint32_t>(e.response) << packed.value_bits) |
          static_cast<std::uint32_t>(e.next_value);
    }
  }
  return packed;
}

std::uint64_t delta_fingerprint(const ObjectType& type) {
  std::uint64_t seed = 0;
  hash_combine(seed, static_cast<std::uint64_t>(type.value_count()));
  hash_combine(seed, static_cast<std::uint64_t>(type.op_count()));
  hash_combine(seed, static_cast<std::uint64_t>(type.response_count()));
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      const Effect& e = type.apply(v, op);
      hash_combine(seed, static_cast<std::uint64_t>(e.response));
      hash_combine(seed, static_cast<std::uint64_t>(e.next_value));
    }
  }
  return seed;
}

bool packed_matches_type(const PackedDelta& packed, const ObjectType& type) {
  if (packed.value_count != type.value_count() ||
      packed.op_count != type.op_count() ||
      packed.response_count != type.response_count()) {
    return false;
  }
  if (packed.table.size() != (static_cast<std::size_t>(packed.value_count)
                              << packed.op_bits)) {
    return false;
  }
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      if (!(packed.effect(v, op) == type.apply(v, op))) return false;
    }
  }
  return true;
}

}  // namespace rcons::spec
