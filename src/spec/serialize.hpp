// Text serialization of object types.
//
// Types can be saved and reloaded in a small line-oriented format, so
// experiments can ship machine definitions (e.g. the searched X_4) as data
// and users can define their own types without recompiling:
//
//   # comment
//   type test_and_set
//   value 0
//   value 1
//   op tas
//   0 tas -> 1 / won
//   1 tas -> 1 / lost
//   readop read
//
// Directives:
//   type <name>                  — exactly once, first non-comment line
//   value <name>                 — declares a value (order = id order)
//   op <name>                    — declares an operation
//   readop <name>                — declares a Read operation (transitions
//                                  generated for all values; place after
//                                  all `value` lines)
//   <value> <op> -> <next> / <response>   — one transition
// Every (value, declared-op) pair must end up with a transition.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "spec/object_type.hpp"

namespace rcons::spec {

struct ParseResult {
  std::optional<ObjectType> type;
  std::string error;  // empty on success
  int error_line = 0;

  bool ok() const { return type.has_value(); }
};

/// Parses the text format above.
ParseResult parse_type(std::string_view text);

/// Serializes a type into the text format; parse_type(serialize_type(t))
/// reproduces t exactly (same names, ids, and transitions).
std::string serialize_type(const ObjectType& type);

}  // namespace rcons::spec
