// Text serialization of object types.
//
// Types can be saved and reloaded in a small line-oriented format, so
// experiments can ship machine definitions (e.g. the searched X_4) as data
// and users can define their own types without recompiling:
//
//   # comment
//   type test_and_set
//   value 0
//   value 1
//   op tas
//   0 tas -> 1 / won
//   1 tas -> 1 / lost
//   readop read
//
// Directives:
//   type <name>                  — exactly once, first non-comment line
//   value <name>                 — declares a value (order = id order)
//   op <name>                    — declares an operation
//   initial <name>               — optional: designates the initial value
//                                  (defaults to the first declared value;
//                                  tools like the linter use this to decide
//                                  reachability questions)
//   readop <name>                — declares a Read operation (transitions
//                                  generated for all values; place after
//                                  all `value` lines)
//   <value> <op> -> <next> / <response>   — one transition
// Every (value, declared-op) pair must end up with a transition. A repeated
// row for the same (value, op) pair is accepted (last row wins, matching
// TypeBuilder), but every earlier row is reported in ParseResult::duplicates
// so the linter can flag the specification as non-deterministic.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::spec {

/// A transition row that redefined an already-specified (value, op) pair.
struct DuplicateRow {
  int line = 0;        // line of the overriding row
  int first_line = 0;  // line that first defined the pair (0 for readop)
  std::string value;
  std::string op;
};

struct ParseResult {
  std::optional<ObjectType> type;
  std::string error;  // empty on success
  int error_line = 0;
  /// Redefined transition rows, in file order (empty for clean files).
  std::vector<DuplicateRow> duplicates;
  /// Value named by an `initial` directive, if the file had one.
  std::optional<ValueId> declared_initial;

  bool ok() const { return type.has_value(); }
};

/// Parses the text format above.
ParseResult parse_type(std::string_view text);

/// Serializes a type into the text format; parse_type(serialize_type(t))
/// reproduces t exactly (same names, ids, and transitions).
std::string serialize_type(const ObjectType& type);

}  // namespace rcons::spec
