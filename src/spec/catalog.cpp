#include "spec/catalog.hpp"

#include <string>
#include <vector>

#include "spec/builder.hpp"
#include "util/assert.hpp"

namespace rcons::spec {

namespace {
std::string idx_name(std::string_view prefix, int i) {
  return std::string(prefix) + std::to_string(i);
}
}  // namespace

ObjectType make_register(int domain) {
  RCONS_CHECK(domain >= 2);
  TypeBuilder b("register" + std::to_string(domain));
  for (int i = 0; i < domain; ++i) b.value(idx_name("r", i));
  for (int i = 0; i < domain; ++i) b.op(idx_name("write_", i));
  for (int v = 0; v < domain; ++v) {
    for (int i = 0; i < domain; ++i) {
      b.on(idx_name("r", v), idx_name("write_", i))
          .then(idx_name("r", i))
          .returns("ok");
    }
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_test_and_set() {
  TypeBuilder b("test_and_set");
  b.value("0");
  b.value("1");
  b.op("tas");
  b.on("0", "tas").then("1").returns("won");
  b.on("1", "tas").then("1").returns("lost");
  b.make_read_op("read");
  return b.build();
}

ObjectType make_swap(int domain) {
  RCONS_CHECK(domain >= 2);
  TypeBuilder b("swap" + std::to_string(domain));
  for (int i = 0; i < domain; ++i) b.value(idx_name("r", i));
  for (int i = 0; i < domain; ++i) b.op(idx_name("swap_", i));
  for (int v = 0; v < domain; ++v) {
    for (int i = 0; i < domain; ++i) {
      // swap returns the old value.
      b.on(idx_name("r", v), idx_name("swap_", i))
          .then(idx_name("r", i))
          .returns("old_" + std::to_string(v));
    }
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_fetch_and_add(int modulus) {
  RCONS_CHECK(modulus >= 2);
  TypeBuilder b("fetch_and_add" + std::to_string(modulus));
  for (int i = 0; i < modulus; ++i) b.value(idx_name("c", i));
  b.op("faa");
  for (int v = 0; v < modulus; ++v) {
    b.on(idx_name("c", v), "faa")
        .then(idx_name("c", (v + 1) % modulus))
        .returns("old_" + std::to_string(v));
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_fetch_and_increment_saturating(int max) {
  RCONS_CHECK(max >= 1);
  TypeBuilder b("fetch_and_inc_sat" + std::to_string(max));
  for (int i = 0; i <= max; ++i) b.value(idx_name("c", i));
  b.op("fai");
  for (int v = 0; v <= max; ++v) {
    const int next = v < max ? v + 1 : max;
    b.on(idx_name("c", v), "fai")
        .then(idx_name("c", next))
        .returns("old_" + std::to_string(v));
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_cas(int domain) {
  RCONS_CHECK(domain >= 2);
  TypeBuilder b("cas" + std::to_string(domain));
  for (int i = 0; i < domain; ++i) b.value(idx_name("r", i));
  for (int a = 0; a < domain; ++a) {
    for (int c = 0; c < domain; ++c) {
      if (a == c) continue;
      b.op("cas_" + std::to_string(a) + "_" + std::to_string(c));
    }
  }
  for (int v = 0; v < domain; ++v) {
    for (int a = 0; a < domain; ++a) {
      for (int c = 0; c < domain; ++c) {
        if (a == c) continue;
        const std::string opn =
            "cas_" + std::to_string(a) + "_" + std::to_string(c);
        // CAS returns the old value; swaps only when it matches `a`.
        auto t = b.on(idx_name("r", v), opn);
        t.returns("old_" + std::to_string(v));
        if (v == a) t.then(idx_name("r", c));
      }
    }
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_sticky(int domain) {
  RCONS_CHECK(domain >= 2);
  TypeBuilder b("sticky" + std::to_string(domain));
  b.value("undef");
  for (int i = 0; i < domain; ++i) b.value(idx_name("s", i));
  for (int i = 0; i < domain; ++i) b.op(idx_name("write_", i));
  for (int i = 0; i < domain; ++i) {
    // Writing an undefined sticky cell defines it and reports the new value;
    // writing a defined cell is a no-op that reports the existing value.
    b.on("undef", idx_name("write_", i))
        .then(idx_name("s", i))
        .returns("is_" + std::to_string(i));
    for (int v = 0; v < domain; ++v) {
      b.on(idx_name("s", v), idx_name("write_", i))
          .returns("is_" + std::to_string(v));
    }
  }
  b.make_read_op("read");
  return b.build();
}

ObjectType make_sticky_bit() { return make_sticky(2); }

ObjectType make_consensus_object(int m) {
  RCONS_CHECK(m >= 1);
  TypeBuilder b("consensus" + std::to_string(m));
  // Values: undecided; decided_{v,k} = first proposal was v and k proposals
  // have been accepted so far (k = 1..m); full.
  b.value("undec");
  for (int v = 0; v <= 1; ++v) {
    for (int k = 1; k <= m; ++k) {
      b.value("dec_" + std::to_string(v) + "_" + std::to_string(k));
    }
  }
  b.value("full");
  b.op("propose_0");
  b.op("propose_1");
  for (int x = 0; x <= 1; ++x) {
    const std::string opn = "propose_" + std::to_string(x);
    b.on("undec", opn)
        .then("dec_" + std::to_string(x) + "_1")
        .returns(std::to_string(x));
    for (int v = 0; v <= 1; ++v) {
      for (int k = 1; k <= m; ++k) {
        const std::string state =
            "dec_" + std::to_string(v) + "_" + std::to_string(k);
        const std::string next =
            k < m ? "dec_" + std::to_string(v) + "_" + std::to_string(k + 1)
                  : "full";
        b.on(state, opn).then(next).returns(std::to_string(v));
      }
    }
    b.on("full", opn).returns("bot");
  }
  b.make_read_op("read");
  return b.build();
}

namespace {
// Queue contents are encoded as strings over {a, b} ("" = empty); the
// builder interns each distinct content as one value.
std::string qval(const std::string& contents) {
  return contents.empty() ? "[]" : "[" + contents + "]";
}

void build_queue_transitions(TypeBuilder& b, int capacity, bool with_peek) {
  // Enumerate all contents up to the capacity.
  std::vector<std::string> states{""};
  for (int len = 1; len <= capacity; ++len) {
    std::vector<std::string> next_states;
    for (const auto& s : states) {
      if (static_cast<int>(s.size()) == len - 1) {
        next_states.push_back(s + "a");
        next_states.push_back(s + "b");
      }
    }
    states.insert(states.end(), next_states.begin(), next_states.end());
  }
  for (const auto& s : states) b.value(qval(s));
  b.op("enq_a");
  b.op("enq_b");
  b.op("deq");
  if (with_peek) b.op("peek");
  for (const auto& s : states) {
    for (char c : {'a', 'b'}) {
      const std::string opn = std::string("enq_") + c;
      if (static_cast<int>(s.size()) < capacity) {
        b.on(qval(s), opn).then(qval(s + c)).returns("ok");
      } else {
        b.on(qval(s), opn).returns("full");
      }
    }
    if (s.empty()) {
      b.on(qval(s), "deq").returns("empty");
      if (with_peek) b.on(qval(s), "peek").returns("empty");
    } else {
      b.on(qval(s), "deq")
          .then(qval(s.substr(1)))
          .returns(std::string("got_") + s[0]);
      if (with_peek) {
        b.on(qval(s), "peek").returns(std::string("front_") + s[0]);
      }
    }
  }
}
}  // namespace

ObjectType make_queue(int capacity) {
  RCONS_CHECK(capacity >= 1 && capacity <= 6);
  TypeBuilder b("queue" + std::to_string(capacity));
  build_queue_transitions(b, capacity, /*with_peek=*/false);
  return b.build();
}

ObjectType make_peek_queue(int capacity) {
  RCONS_CHECK(capacity >= 1 && capacity <= 6);
  TypeBuilder b("peek_queue" + std::to_string(capacity));
  build_queue_transitions(b, capacity, /*with_peek=*/true);
  return b.build();
}

ObjectType make_readable_queue(int capacity) {
  RCONS_CHECK(capacity >= 1 && capacity <= 6);
  TypeBuilder b("readable_queue" + std::to_string(capacity));
  build_queue_transitions(b, capacity, /*with_peek=*/false);
  b.make_read_op("read");
  return b.build();
}

ObjectType make_stack(int capacity) {
  RCONS_CHECK(capacity >= 1 && capacity <= 6);
  TypeBuilder b("stack" + std::to_string(capacity));
  // Contents encoded bottom-to-top as strings over {a, b}.
  std::vector<std::string> states{""};
  for (std::size_t i = 0; i < states.size(); ++i) {
    if (static_cast<int>(states[i].size()) < capacity) {
      states.push_back(states[i] + "a");
      states.push_back(states[i] + "b");
    }
  }
  for (const auto& s : states) b.value(qval(s));
  b.op("push_a");
  b.op("push_b");
  b.op("pop");
  for (const auto& s : states) {
    for (char c : {'a', 'b'}) {
      const std::string opn = std::string("push_") + c;
      if (static_cast<int>(s.size()) < capacity) {
        b.on(qval(s), opn).then(qval(s + c)).returns("ok");
      } else {
        b.on(qval(s), opn).returns("full");
      }
    }
    if (s.empty()) {
      b.on(qval(s), "pop").returns("empty");
    } else {
      b.on(qval(s), "pop")
          .then(qval(s.substr(0, s.size() - 1)))
          .returns(std::string("got_") + s.back());
    }
  }
  return b.build();
}

}  // namespace rcons::spec
