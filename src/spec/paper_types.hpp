// Object types defined in (or required by) the paper.
//
// * T_{n,n'} — Section 4, Figure 3. Non-readable, deterministic; consensus
//   number n (Lemma 15) and recoverable consensus number n' (Lemma 16).
//   Implemented verbatim from the paper's transition description.
//
// * X_n — the readable witness type from Delporte-Gallet, Fatourou,
//   Fauconnier & Ruppert [4] with consensus number n that is
//   (n-2)-recording but not (n-1)-recording; by the paper's Theorem 13 its
//   recoverable consensus number is exactly n-2. The defining machine lives
//   in [4], not in this paper, so we provide (a) a parameterized family of
//   candidate machines ("erase counters") covering the design space the
//   literature sketches, and (b) make_xn, the member of that family whose
//   discerning/recording profile our checkers verify. The checkers — not
//   this file — are the ground truth for its consensus numbers; the test
//   suite asserts the computed profile.
#pragma once

#include "spec/object_type.hpp"

namespace rcons::spec {

/// The paper's type T_{n,n'} (Section 4, Figure 3), for n > n' >= 1.
///
/// Values: s (initial), s_{x,i} for x in {0,1} and i in 1..n-1, and s_bot
/// (2n values total). Operations op_0, op_1, op_R:
///   * op_x on s         -> s_{x,1},  returns x
///   * op_x on s_{y,i}   -> s_{y,i+1} (s_bot when i = n-1), returns y
///   * any op on s_bot   -> s_bot,    returns bot
///   * op_R on s         -> s,        returns s
///   * op_R on s_{y,i}   -> s_{y,i} and returns s_{y,i} when i <= n';
///                          -> s_bot and returns bot when i > n'
/// op_R is *not* a Read (it perturbs values s_{y,i} with i > n'), so the
/// type is not readable.
ObjectType make_tnn(int n, int nprime);

/// Options for the erase-counter family of readable candidate types.
struct EraseCounterOptions {
  /// Number of per-letter counting states A_1..A_k / B_1..B_k.
  int count_states = 2;
  /// If true, the (k+1)-th team operation wipes the counter to a letterless
  /// bot state; otherwise the counter saturates at X_k.
  bool wipe_at_overflow = true;
  /// If true, include the erase operation e (X_i -> u, response reveals the
  /// erased state). Erasure is what creates "hiding" schedules.
  bool with_erase = true;
  /// If true, e erases only A-states (asymmetric hiding); B-states are left
  /// unchanged by e.
  bool erase_only_a = false;
};

/// Readable deterministic "erase counter": values u, A_1..A_k, B_1..B_k,
/// bot; team operations a and b advance a counter that remembers which of
/// a/b arrived first; e (optional) erases the counter back to u while
/// returning the erased state; read is a true Read. The family's members
/// realize a spectrum of (discerning, recording) profiles that the
/// hierarchy checkers map out (see tests/hierarchy and the xn search tool).
ObjectType make_erase_counter(const EraseCounterOptions& options);

/// The X_4 witness: a readable deterministic type with consensus number 4
/// and recoverable consensus number 2 — the paper's headline gap of 2
/// (rcons = cons - 2) for n = 4. Discovered by the checker-guided machine
/// search (examples/xn_search) and pinned by the exhaustive deciders in
/// tests/hierarchy_test.cpp. Only n = 4 is provided; use the search tool
/// to hunt instances at other n.
ObjectType make_xn(int n);

}  // namespace rcons::spec
