#include "spec/object_type.hpp"

#include <algorithm>
#include <sstream>

#include "util/assert.hpp"

namespace rcons::spec {

const std::string& ObjectType::value_name(ValueId v) const {
  RCONS_CHECK_MSG(v >= 0 && v < value_count(), "bad value id ", v, " for ",
                  name_);
  return value_names_[static_cast<std::size_t>(v)];
}

const std::string& ObjectType::op_name(OpId op) const {
  RCONS_CHECK_MSG(op >= 0 && op < op_count(), "bad op id ", op, " for ",
                  name_);
  return op_names_[static_cast<std::size_t>(op)];
}

const std::string& ObjectType::response_name(ResponseId r) const {
  RCONS_CHECK_MSG(r >= 0 && r < response_count(), "bad response id ", r,
                  " for ", name_);
  return response_names_[static_cast<std::size_t>(r)];
}

namespace {
template <typename Names>
std::optional<int> find_name(const Names& names, std::string_view needle) {
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == needle) return static_cast<int>(i);
  }
  return std::nullopt;
}
}  // namespace

std::optional<ValueId> ObjectType::find_value(std::string_view name) const {
  return find_name(value_names_, name);
}

std::optional<OpId> ObjectType::find_op(std::string_view name) const {
  return find_name(op_names_, name);
}

std::optional<ResponseId> ObjectType::find_response(
    std::string_view name) const {
  return find_name(response_names_, name);
}

const Effect& ObjectType::apply(ValueId v, OpId op) const {
  RCONS_CHECK_MSG(v >= 0 && v < value_count(), "bad value id ", v);
  RCONS_CHECK_MSG(op >= 0 && op < op_count(), "bad op id ", op);
  return delta_[static_cast<std::size_t>(v) *
                    static_cast<std::size_t>(op_count()) +
                static_cast<std::size_t>(op)];
}

ValueId ObjectType::apply_all(ValueId v, const std::vector<OpId>& ops) const {
  for (OpId op : ops) {
    v = apply(v, op).next_value;
  }
  return v;
}

ValueId ObjectType::apply_trace(ValueId v, const std::vector<OpId>& ops,
                                std::vector<ResponseId>& responses) const {
  responses.resize(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Effect& e = apply(v, ops[i]);
    responses[i] = e.response;
    v = e.next_value;
  }
  return v;
}

bool ObjectType::op_is_value_preserving(OpId op) const {
  for (ValueId v = 0; v < value_count(); ++v) {
    if (apply(v, op).next_value != v) return false;
  }
  return true;
}

bool ObjectType::op_is_read(OpId op) const {
  if (!op_is_value_preserving(op)) return false;
  // Response must identify the value: injective response function.
  std::vector<ResponseId> seen;
  seen.reserve(static_cast<std::size_t>(value_count()));
  for (ValueId v = 0; v < value_count(); ++v) {
    const ResponseId r = apply(v, op).response;
    if (std::find(seen.begin(), seen.end(), r) != seen.end()) return false;
    seen.push_back(r);
  }
  return true;
}

std::optional<OpId> ObjectType::read_op() const {
  for (OpId op = 0; op < op_count(); ++op) {
    if (op_is_read(op)) return op;
  }
  return std::nullopt;
}

std::vector<ValueId> ObjectType::reachable_values(ValueId from) const {
  std::vector<bool> seen(static_cast<std::size_t>(value_count()), false);
  std::vector<ValueId> stack{from};
  seen[static_cast<std::size_t>(from)] = true;
  std::vector<ValueId> out;
  while (!stack.empty()) {
    const ValueId v = stack.back();
    stack.pop_back();
    out.push_back(v);
    for (OpId op = 0; op < op_count(); ++op) {
      const ValueId next = apply(v, op).next_value;
      if (!seen[static_cast<std::size_t>(next)]) {
        seen[static_cast<std::size_t>(next)] = true;
        stack.push_back(next);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string ObjectType::describe() const {
  std::ostringstream oss;
  oss << "type " << name_ << ": " << value_count() << " values, "
      << op_count() << " ops, " << response_count() << " responses"
      << (is_readable() ? " (readable)" : " (not readable)") << "\n";
  for (ValueId v = 0; v < value_count(); ++v) {
    for (OpId op = 0; op < op_count(); ++op) {
      const Effect& e = apply(v, op);
      oss << "  " << value_name(v) << " --" << op_name(op) << "--> "
          << value_name(e.next_value) << "  (returns "
          << response_name(e.response) << ")\n";
    }
  }
  return oss.str();
}

std::string ObjectType::to_dot() const {
  std::ostringstream oss;
  oss << "digraph \"" << name_ << "\" {\n  rankdir=LR;\n";
  for (ValueId v = 0; v < value_count(); ++v) {
    oss << "  v" << v << " [label=\"" << value_name(v) << "\"];\n";
  }
  for (ValueId v = 0; v < value_count(); ++v) {
    for (OpId op = 0; op < op_count(); ++op) {
      const Effect& e = apply(v, op);
      oss << "  v" << v << " -> v" << e.next_value << " [label=\""
          << op_name(op) << " / " << response_name(e.response) << "\"];\n";
    }
  }
  oss << "}\n";
  return oss.str();
}

}  // namespace rcons::spec
