#include "hierarchy/search.hpp"

#include <algorithm>

#include "analysis/static_bounds/static_bounds.hpp"
#include "reduction/type_canon.hpp"
#include "spec/builder.hpp"
#include "trace/metrics.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace rcons::hierarchy {

std::vector<FamilyEntry> profile_erase_counter_family(int max_count_states,
                                                      int max_n,
                                                      int threads) {
  std::vector<spec::EraseCounterOptions> variants;
  for (int k = 1; k <= max_count_states; ++k) {
    for (bool wipe : {true, false}) {
      for (bool with_erase : {true, false}) {
        for (bool erase_only_a : {false, true}) {
          if (!with_erase && erase_only_a) continue;  // no erase op to bias
          spec::EraseCounterOptions options;
          options.count_states = k;
          options.wipe_at_overflow = wipe;
          options.with_erase = with_erase;
          options.erase_only_a = erase_only_a;
          variants.push_back(options);
        }
      }
    }
  }
  std::vector<FamilyEntry> entries(variants.size());
  const auto profile_one = [&](std::size_t i) {
    const spec::ObjectType type = spec::make_erase_counter(variants[i]);
    entries[i] = FamilyEntry{variants[i], compute_profile(type, max_n)};
  };
  if (threads == 1) {
    for (std::size_t i = 0; i < variants.size(); ++i) profile_one(i);
  } else {
    util::ThreadPool pool(threads);
    pool.parallel_for(variants.size(), 1,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) profile_one(i);
    });
  }
  return entries;
}

namespace {

/// Genome of a candidate machine: per (value, team-op) the successor value
/// and response. A Read op is appended when the genome is instantiated, so
/// every candidate is readable by construction.
struct Genome {
  int values;
  int ops;
  int responses;
  // flat [v * ops + op] -> {response, next}
  std::vector<std::pair<int, int>> delta;

  spec::ObjectType instantiate() const {
    spec::TypeBuilder b("searched");
    for (int v = 0; v < values; ++v) b.value("v" + std::to_string(v));
    for (int o = 0; o < ops; ++o) b.op("o" + std::to_string(o));
    for (int v = 0; v < values; ++v) {
      for (int o = 0; o < ops; ++o) {
        const auto& [resp, next] = delta[static_cast<std::size_t>(v * ops + o)];
        b.on("v" + std::to_string(v), "o" + std::to_string(o))
            .then("v" + std::to_string(next))
            .returns("x" + std::to_string(resp));
      }
    }
    b.make_read_op("read");
    return b.build();
  }
};

Genome random_genome(const MachineSearchOptions& options, Xoshiro256& rng) {
  Genome g;
  g.values = options.value_count;
  g.ops = options.op_count;
  g.responses = options.response_count;
  g.delta.resize(static_cast<std::size_t>(g.values * g.ops));
  for (auto& [resp, next] : g.delta) {
    resp = static_cast<int>(rng.below(static_cast<std::uint64_t>(g.responses)));
    next = static_cast<int>(rng.below(static_cast<std::uint64_t>(g.values)));
  }
  return g;
}

void mutate(Genome& g, Xoshiro256& rng) {
  const auto idx = static_cast<std::size_t>(
      rng.below(static_cast<std::uint64_t>(g.delta.size())));
  if (rng.chance(0.5)) {
    g.delta[idx].first =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(g.responses)));
  } else {
    g.delta[idx].second =
        static_cast<int>(rng.below(static_cast<std::uint64_t>(g.values)));
  }
}

/// Fitness: the gap dominates; among equal gaps prefer higher levels
/// (pushes the search off the register-like floor where both levels are 1).
long fitness(const TypeProfile& p) {
  const int gap = p.discerning.value - p.recording.value;
  return gap * 1000L + p.discerning.value * 10L + p.recording.value;
}

TypeProfile floor_profile(const spec::ObjectType& type) {
  TypeProfile profile;
  profile.type_name = type.name();
  profile.readable = true;
  profile.discerning = Level{1, true};
  profile.recording = Level{1, true};
  return profile;
}

/// Profiles one candidate. With use_bounds the static brackets prune the
/// per-n decider runs and the not-2-discerning discard happens without any
/// decider at all (the SA006 pair scan is exact at n = 2); the returned
/// profile is byte-identical either way, by the bounds soundness contract.
/// `allow_floor` mirrors the legacy behavior: the mutation loop floors
/// not-2-discerning candidates, the restart's initial genome does not.
TypeProfile profile_candidate(const spec::ObjectType& type,
                              const MachineSearchOptions& options,
                              bool allow_floor) {
  if (!options.use_bounds) {
    // Cheap pre-filter: a machine that is not even 2-discerning cannot
    // beat anything interesting; skip the full profile.
    if (allow_floor && !check_discerning(type, 2).holds) {
      return floor_profile(type);
    }
    return compute_profile(type, options.max_n);
  }
  const analysis::BoundsReport bounds = analysis::analyze_static_bounds(type);
  if (allow_floor && bounds.discerning.hi <= 1) {
    trace::metrics().add("bounds.search_floor_skips", 1);
    return floor_profile(type);
  }
  ProfileOptions profile_options;
  profile_options.bounds = &bounds;
  return compute_profile(type, options.max_n, profile_options);
}

/// One hill-climbing restart, driven by its own RNG stream. The outcome is
/// a pure function of (options, restart), independent of how restarts are
/// scheduled across threads.
struct RestartOutcome {
  int best_gap = -1;
  spec::ObjectType best_type;
  TypeProfile best_profile;
  std::uint64_t machines_evaluated = 0;
  /// False when the restart's initial machine belongs to another shard
  /// (nothing was profiled).
  bool ran = false;
};

RestartOutcome run_restart(const MachineSearchOptions& options, int restart) {
  // The restart index only picks WHICH machine the climb starts from.
  SplitMix64 mix(options.seed ^
                 (0x9e3779b97f4a7c15ULL *
                  static_cast<std::uint64_t>(restart + 1)));
  Xoshiro256 init_rng(mix.next());

  RestartOutcome out;
  Genome current = random_genome(options, init_rng);
  spec::ObjectType current_type = current.instantiate();

  // Everything after the start machine keys off its canonical fingerprint,
  // which is stable across platforms and relabelings: shard membership is
  // a property of the machine itself (isomorphic starts land together and
  // the K-way partition is disjoint by construction), and the mutation
  // stream replays identically wherever the restart is scheduled — the
  // old restart-order seeding made the climb depend on the restart's
  // position, so any resequencing rewrote every trajectory.
  const std::uint64_t fingerprint =
      reduction::canonical_type_hash(current_type);
  if (options.shards > 1 &&
      fingerprint % static_cast<std::uint64_t>(options.shards) !=
          static_cast<std::uint64_t>(options.shard_index)) {
    return out;
  }
  out.ran = true;
  SplitMix64 climb_mix(options.seed ^ mix64(fingerprint));
  Xoshiro256 rng(climb_mix.next());

  TypeProfile current_profile =
      profile_candidate(current_type, options, /*allow_floor=*/false);
  out.machines_evaluated += 1;
  long current_fitness = fitness(current_profile);

  for (int step = 0; step < options.mutations_per_restart; ++step) {
    Genome candidate = current;
    mutate(candidate, rng);
    if (rng.chance(0.3)) mutate(candidate, rng);  // occasional double move
    spec::ObjectType type = candidate.instantiate();
    TypeProfile profile = profile_candidate(type, options, /*allow_floor=*/true);
    out.machines_evaluated += 1;
    const long f = fitness(profile);
    if (f >= current_fitness) {  // plateau moves allowed
      current = std::move(candidate);
      current_profile = profile;
      current_type = std::move(type);
      current_fitness = f;
    }
    const int gap =
        current_profile.discerning.value - current_profile.recording.value;
    if (gap > out.best_gap) {
      out.best_gap = gap;
      out.best_type = current_type;
      out.best_profile = current_profile;
    }
  }
  return out;
}

}  // namespace

MachineSearchResult search_gap_machines(const MachineSearchOptions& options) {
  std::vector<RestartOutcome> outcomes(
      static_cast<std::size_t>(options.restarts));
  if (options.threads == 1) {
    for (int restart = 0; restart < options.restarts; ++restart) {
      outcomes[static_cast<std::size_t>(restart)] =
          run_restart(options, restart);
    }
  } else {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(outcomes.size(), 1,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        outcomes[i] = run_restart(options, static_cast<int>(i));
      }
    });
  }

  // Reduce in restart order with a strict improvement rule: the winner is
  // the earliest restart achieving the maximal gap, for any thread count
  // (and, since shard membership is per-machine, for any shard layout
  // covering that restart).
  MachineSearchResult result;
  result.best_gap = -1;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    RestartOutcome& out = outcomes[i];
    result.machines_evaluated += out.machines_evaluated;
    if (out.ran) result.restarts_run += 1;
    if (out.ran && out.best_gap > result.best_gap) {
      result.best_gap = out.best_gap;
      result.best_restart = static_cast<int>(i);
      result.best_type = std::move(out.best_type);
      result.best_profile = std::move(out.best_profile);
    }
  }
  return result;
}

spec::ObjectType random_readable_type(int value_count, int op_count,
                                      int response_count, std::uint64_t seed) {
  MachineSearchOptions options;
  options.value_count = value_count;
  options.op_count = op_count;
  options.response_count = response_count;
  Xoshiro256 rng(seed);
  return random_genome(options, rng).instantiate();
}

std::vector<FamilyEntry> rank_by_gap(std::vector<FamilyEntry> entries) {
  std::stable_sort(entries.begin(), entries.end(),
                   [](const FamilyEntry& a, const FamilyEntry& b) {
    const int gap_a = a.profile.discerning.value - a.profile.recording.value;
    const int gap_b = b.profile.discerning.value - b.profile.recording.value;
    if (gap_a != gap_b) return gap_a > gap_b;
    return a.options.count_states < b.options.count_states;
  });
  return entries;
}

}  // namespace rcons::hierarchy
