// Profile search across parameterized type families.
//
// The paper's headline corollary needs a readable type whose consensus
// number strictly exceeds its recoverable consensus number (DFFR's X_n has
// gap exactly 2). This module maps the (discerning, recording) profiles of
// the erase-counter family so the experiments can report computed gaps —
// the checkers, not assumptions, are the ground truth (see DESIGN.md's
// substitution table).
#pragma once

#include <vector>

#include "hierarchy/consensus_number.hpp"
#include "spec/paper_types.hpp"

namespace rcons::hierarchy {

struct FamilyEntry {
  spec::EraseCounterOptions options;
  TypeProfile profile;
};

/// Profiles every erase-counter variant with count_states in
/// [1, max_count_states] x {wipe, saturate} x {with/without erase} x
/// {symmetric, A-only erase}, scanning levels up to max_n. `threads`
/// follows the SafetyOptions contract (1 = serial, > 1 = one profile per
/// pool task with bit-identical entries, 0 = hardware threads).
std::vector<FamilyEntry> profile_erase_counter_family(int max_count_states,
                                                      int max_n,
                                                      int threads = 1);

/// Among the profiled entries, the largest computed gap
/// discerning.value - recording.value over readable members (ties broken
/// toward smaller machines). Returns the entries sorted by gap descending.
std::vector<FamilyEntry> rank_by_gap(std::vector<FamilyEntry> entries);

/// Randomized search for readable types with a large gap between their
/// discerning and recording levels (the shape of DFFR's X_n, whose machine
/// is defined in [4] rather than in the paper under reproduction). The
/// search draws random deterministic machines over `value_count` values
/// (value 0 is u) and `op_count` team operations plus a Read, hill-climbing
/// by single-transition mutations with the checkers as the fitness
/// function. Every reported profile is checker-verified by construction.
struct MachineSearchOptions {
  int value_count = 8;
  int op_count = 2;
  int response_count = 6;
  int max_n = 5;
  std::uint64_t seed = 1;
  int restarts = 20;
  int mutations_per_restart = 400;
  /// Restart-level parallelism. Every restart draws from its own
  /// (seed, restart)-indexed RNG stream, so the search result is a pure
  /// function of the options — identical for every thread count (and
  /// restarts may run in any order across the pool). 0 = hardware threads.
  int threads = 1;
  /// Run the static bounds pass on every candidate and use its brackets to
  /// skip decided per-n verdicts (and to discard not-2-discerning
  /// candidates without any decider run — the SA006 scan is exact at
  /// n = 2, so this subsumes the old check_discerning(type, 2) prefilter).
  /// The search result is byte-identical with bounds on or off; only the
  /// number of exact decider runs changes.
  bool use_bounds = true;
  /// Partition the restarts across `shards` cooperating invocations; this
  /// one climbs only the restarts whose INITIAL machine's canonical
  /// fingerprint hashes to `shard_index`. The membership test and the
  /// climb itself both key off that platform-stable fingerprint (not the
  /// restart's position in the sequence), so the partition is disjoint,
  /// exhaustive, and identical on every platform; isomorphic starting
  /// points always land in the same shard.
  int shards = 1;
  int shard_index = 0;
};

struct MachineSearchResult {
  spec::ObjectType best_type;
  TypeProfile best_profile;
  int best_gap = 0;  // discerning.value - recording.value
  /// The earliest restart index achieving best_gap; -1 when no restart
  /// ran (every restart filtered to another shard).
  int best_restart = -1;
  std::uint64_t machines_evaluated = 0;
  /// Restarts this invocation actually climbed (its shard's share).
  std::uint64_t restarts_run = 0;
};

MachineSearchResult search_gap_machines(const MachineSearchOptions& options);

/// One uniformly random readable deterministic machine over `value_count`
/// values and `op_count` team operations plus a Read (the search's genome
/// space). Used by the property tests to sweep checker invariants over
/// arbitrary types.
spec::ObjectType random_readable_type(int value_count, int op_count,
                                      int response_count, std::uint64_t seed);

}  // namespace rcons::hierarchy
