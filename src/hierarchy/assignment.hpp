// Shared vocabulary of the discerning / recording checkers.
//
// Both characterizations quantify existentially over the same three
// choices (Section 2):
//   * an initial value u of the type,
//   * a partition of {p_0..p_{n-1}} into two nonempty teams T_0, T_1,
//   * an operation o_i for each process p_i,
// and then universally over the one-shot schedules S(P). An Assignment
// packages one such choice; the enumerators produce canonical assignments
// up to the process-relabelling symmetry (only the multiset of (team, op)
// pairs matters, because S(P) is closed under permuting process ids).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::hierarchy {

struct Assignment {
  /// Initial value u.
  spec::ValueId initial_value = 0;
  /// team_of[i] in {0,1}: the team of process p_i. Both teams nonempty.
  std::vector<int> team_of;
  /// ops[i]: the operation o_i of process p_i.
  std::vector<spec::OpId> ops;

  int process_count() const { return static_cast<int>(team_of.size()); }

  int team_size(int team) const;

  friend bool operator==(const Assignment&, const Assignment&) = default;

  std::string describe(const spec::ObjectType& type) const;
};

/// Enumeration statistics, reported by the checkers for the scaling bench.
struct EnumerationStats {
  std::uint64_t assignments_tried = 0;
  std::uint64_t schedule_nodes = 0;
};

/// Enumerates canonical assignments for `n` processes over `type`
/// (symmetry-reduced: processes are grouped by team and ops are
/// non-decreasing within each team; team 0 is the smaller team, and for
/// equal sizes the lexicographically smaller op multiset). Invokes `visit`
/// until it returns true ("witness found; stop"); returns whether any visit
/// returned true.
bool for_each_canonical_assignment(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit);

/// Naive enumeration (every partition x every op vector x every value),
/// used for cross-validation and as the ablation baseline. Exponentially
/// more assignments than the canonical enumeration.
bool for_each_assignment_naive(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit);

/// How much symmetry the assignment enumeration quotients away. Every mode
/// yields the same holds/witness-existence verdict; stats and the concrete
/// witness may differ between modes (and are bit-identical across thread
/// counts within one mode).
enum class SymmetryMode {
  /// Every partition x op vector x value; cross-validation baseline.
  kNaive,
  /// Process-relabelling symmetry only (the historical default).
  kCanonical,
  /// kCanonical, further quotiented by the automorphism group of the
  /// type's delta table (reduction::type_automorphisms): an assignment is
  /// skipped when some automorphism maps it to a lexicographically
  /// smaller canonical assignment. Sound because automorphisms commute
  /// with apply(), so they preserve both the discerning and the recording
  /// conditions.
  kAutomorphism,
};

/// Parses "naive" / "canonical" / "automorphism"; returns false on anything
/// else (leaving `out` untouched).
bool parse_symmetry_mode(const std::string& text, SymmetryMode* out);

const char* symmetry_mode_name(SymmetryMode mode);

/// Unified enumeration entry point dispatching on `mode`.
bool for_each_assignment(const spec::ObjectType& type, int n,
                         SymmetryMode mode,
                         const std::function<bool(const Assignment&)>& visit);

}  // namespace rcons::hierarchy
