// The n-discerning decision procedure (Ruppert's characterization).
//
// A deterministic type T is n-discerning if there exist a value u, a
// partition of the n processes into two nonempty teams T_0/T_1, and an
// operation o_i per process such that for every process p_j the sets
// R_{0,j} and R_{1,j} are disjoint, where R_{x,j} collects the pairs
// (response of o_j, resulting object value) over every schedule in S(P)
// that contains p_j and starts with a T_x process.
//
// Ruppert [SIAM J. Comput. 2000]: a deterministic READABLE type has
// consensus number >= n iff it is n-discerning; for arbitrary deterministic
// types n-discerning remains necessary. Since S(P), the values, and the
// operations are all finite, the condition is decidable — this module
// decides it by exhaustive search with process-relabelling symmetry
// reduction and shared-prefix schedule evaluation.
#pragma once

#include <optional>

#include "hierarchy/assignment.hpp"
#include "spec/object_type.hpp"
#include "spec/packed_delta.hpp"

namespace rcons::hierarchy {

struct DiscerningResult {
  bool holds = false;
  /// A witnessing assignment when holds is true.
  std::optional<Assignment> witness;
  EnumerationStats stats;
};

/// Evaluates one candidate assignment: true iff every process's R_{0,j}
/// and R_{1,j} are disjoint. `nodes` (if provided) accumulates the number
/// of schedule-tree nodes visited. A non-null `packed` (the AOT backend)
/// steps the schedule tree through the branch-free table instead of
/// ObjectType::apply; it must agree with `type` entry for entry
/// (codegen::packed_for guarantees this), so the verdict, witness, and
/// stats are identical either way.
bool is_discerning_witness(const spec::ObjectType& type, const Assignment& a,
                           std::uint64_t* nodes = nullptr,
                           const spec::PackedDelta* packed = nullptr);

/// Decides whether `type` is n-discerning (n >= 2) over the enumeration
/// selected by `mode`. `threads` follows the SafetyOptions contract: 1 =
/// serial scan, > 1 = batch-parallel scan with bit-identical witness and
/// stats, 0 = hardware threads. `packed` follows the
/// is_discerning_witness contract (shared read-only across scan threads).
DiscerningResult check_discerning(const spec::ObjectType& type, int n,
                                  SymmetryMode mode, int threads = 1,
                                  const spec::PackedDelta* packed = nullptr);

/// Historical entry point: `use_symmetry` selects kCanonical (default) or
/// kNaive.
DiscerningResult check_discerning(const spec::ObjectType& type, int n,
                                  bool use_symmetry = true, int threads = 1);

}  // namespace rcons::hierarchy
