// Internal: batch-parallel evaluation of an assignment enumeration.
//
// The discerning/recording checkers share one loop shape: enumerate
// assignments in a fixed canonical order, evaluate each independently, stop
// at the first witness, and report prefix-inclusive statistics (every
// assignment up to AND including the witness counts toward
// assignments_tried / schedule_nodes). Because evaluation of one assignment
// never depends on another, the loop parallelizes by batches: the
// enumerator fills a batch, the pool evaluates it, and a sequential reduce
// in enumeration order replays the serial engine's bookkeeping exactly —
// same witness, same stats, for every thread count.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "hierarchy/assignment.hpp"
#include "spec/object_type.hpp"
#include "util/parallel.hpp"

namespace rcons::hierarchy::detail {

struct AssignmentScan {
  bool holds = false;
  std::optional<Assignment> witness;
  EnumerationStats stats;
};

/// Runs `evaluate(assignment, &nodes)` over the enumeration selected by
/// `mode` using `threads` pool threads. Returns the first witness in
/// enumeration order with statistics identical to the serial scan.
inline AssignmentScan scan_assignments_parallel(
    const spec::ObjectType& type, int n, SymmetryMode mode, int threads,
    const std::function<bool(const Assignment&, std::uint64_t*)>& evaluate) {
  util::ThreadPool pool(threads);
  const std::size_t batch_cap =
      static_cast<std::size_t>(pool.thread_count()) * 32;

  AssignmentScan out;
  std::vector<Assignment> batch;
  batch.reserve(batch_cap);
  std::vector<std::uint64_t> nodes;
  std::vector<char> is_witness;

  const auto flush = [&]() -> bool {
    if (batch.empty()) return false;
    nodes.assign(batch.size(), 0);
    is_witness.assign(batch.size(), 0);
    // Indices past a known witness cannot be the FIRST witness and do not
    // contribute to the prefix-inclusive stats, so they may be skipped;
    // indices before it must still be evaluated for their node counts.
    std::atomic<std::size_t> first_found{batch.size()};
    pool.parallel_for(
        batch.size(), 1,
        [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        if (i > first_found.load(std::memory_order_relaxed)) continue;
        if (evaluate(batch[i], &nodes[i])) {
          is_witness[i] = 1;
          std::size_t cur = first_found.load(std::memory_order_relaxed);
          while (i < cur && !first_found.compare_exchange_weak(
                                cur, i, std::memory_order_relaxed)) {
          }
        }
      }
    });
    for (std::size_t i = 0; i < batch.size(); ++i) {
      out.stats.assignments_tried += 1;
      out.stats.schedule_nodes += nodes[i];
      if (is_witness[i] != 0) {
        out.holds = true;
        out.witness = batch[i];
        return true;
      }
    }
    batch.clear();
    return false;
  };

  const auto visit = [&](const Assignment& a) {
    batch.push_back(a);
    if (batch.size() >= batch_cap) return flush();
    return false;
  };
  for_each_assignment(type, n, mode, visit);
  if (!out.holds) flush();
  return out;
}

}  // namespace rcons::hierarchy::detail
