#include "hierarchy/consensus_number.hpp"

#include "util/assert.hpp"

namespace rcons::hierarchy {

std::string Level::to_string() const {
  return (exact ? "" : ">= ") + std::to_string(value);
}

namespace {

template <typename Check>
Level scan_level(int max_n, const Check& holds_at) {
  RCONS_CHECK(max_n >= 1);
  Level level{1, true};
  for (int n = 2; n <= max_n; ++n) {
    if (!holds_at(n)) {
      return level;  // monotone: no larger n can hold
    }
    level.value = n;
  }
  level.exact = false;  // still held at the cap
  // A cap equal to 1 cannot certify exactness either way; treat value 1
  // reached without any successful n >= 2 as exact (handled above).
  if (level.value == 1) level.exact = true;
  return level;
}

}  // namespace

Level discerning_level(const spec::ObjectType& type, int max_n, int threads) {
  return scan_level(max_n, [&](int n) {
    return check_discerning(type, n, /*use_symmetry=*/true, threads).holds;
  });
}

Level recording_level(const spec::ObjectType& type, int max_n, int threads) {
  return scan_level(max_n, [&](int n) {
    return check_recording(type, n, /*use_symmetry=*/true, threads).holds;
  });
}

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            int threads) {
  TypeProfile profile;
  profile.type_name = type.name();
  profile.readable = type.is_readable();
  profile.discerning = discerning_level(type, max_n, threads);
  profile.recording = recording_level(type, max_n, threads);
  return profile;
}

}  // namespace rcons::hierarchy
