#include "hierarchy/consensus_number.hpp"

#include <memory>

#include "codegen/registry.hpp"
#include "reduction/type_canon.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

std::string Level::to_string() const {
  return (exact ? "" : ">= ") + std::to_string(value);
}

std::string verdict_cache_key(const char* kind, int n,
                              const std::string& spec_key) {
  return std::string(kind) + "|n=" + std::to_string(n) +
         "|z=inf|spec=" + spec_key;
}

namespace {

template <typename Check>
Level scan_level(int max_n, const Check& holds_at) {
  RCONS_CHECK(max_n >= 1);
  Level level{1, true};
  for (int n = 2; n <= max_n; ++n) {
    if (!holds_at(n)) {
      return level;  // monotone: no larger n can hold
    }
    level.value = n;
  }
  level.exact = false;  // still held at the cap
  // A cap equal to 1 cannot certify exactness either way; treat value 1
  // reached without any successful n >= 2 as exact (handled above).
  if (level.value == 1) level.exact = true;
  return level;
}

// Wraps one per-n verdict in a cache lookup/store when a cache is wired.
// The key embeds the canonical type key (not the name), so a renamed or
// relabeled-but-isomorphic type hits the same entry; the crash budget is
// pinned to "inf" because both conditions quantify over all one-shot
// schedules regardless of crashes.
class CachedVerdicts {
 public:
  CachedVerdicts(const spec::ObjectType& type, const ProfileOptions& options)
      : options_(options) {
    if (options_.cache != nullptr && options_.cache->enabled()) {
      spec_key_ = reduction::canonicalize_type(type).key;
    }
  }

  template <typename Check>
  bool holds(const char* kind, int n, const Check& check) const {
    if (spec_key_.empty()) return check(n);
    const std::string key = verdict_key(kind, n);
    if (std::optional<bool> cached = parse(*options_.cache, key)) {
      return *cached;
    }
    const bool result = check(n);
    options_.cache->store(key, result ? "holds=1" : "holds=0");
    return result;
  }

  /// Records a verdict the static brackets decided without a decider run.
  /// Lookup-then-store keeps warm runs at zero misses while still seeding
  /// cold caches; the provenance suffix records which rule decided it (old
  /// readers prefix-parse, so mixed-version caches stay compatible).
  void record_bracket(const char* kind, int n, bool verdict,
                      const std::string& rule) const {
    if (spec_key_.empty()) return;
    const std::string key = verdict_key(kind, n);
    if (parse(*options_.cache, key).has_value()) return;
    options_.cache->store(
        key, std::string(verdict ? "holds=1" : "holds=0") + "|by=" + rule);
  }

 private:
  std::string verdict_key(const char* kind, int n) const {
    return verdict_cache_key(kind, n, spec_key_);
  }

  /// Prefix-parses a cached payload: "holds=1" and "holds=1|by=SA007" both
  /// read as true. Unknown payloads read as a miss (recompute).
  static std::optional<bool> parse(const reduction::VerdictCache& cache,
                                   const std::string& key) {
    if (std::optional<std::string> payload = cache.lookup(key)) {
      if (payload->rfind("holds=1", 0) == 0) return true;
      if (payload->rfind("holds=0", 0) == 0) return false;
    }
    return std::nullopt;
  }

  const ProfileOptions& options_;
  std::string spec_key_;
};

// Per-n verdict with the static bracket consulted first: decided ns skip
// the exact decider (and seed the cache with rule provenance); undecided
// ns consult the order-lattice bracket next (same skip-plus-provenance
// pattern, SA009-SA012 rules) and only then run the decider on the bounds
// quotient, whose levels equal the original's by SA001/SA002 soundness.
template <typename Check>
bool bounded_holds(const CachedVerdicts& cached, const ProfileOptions& options,
                   const char* kind, const analysis::LevelBracket& bracket,
                   const analysis::LevelBracket* order, int n,
                   const Check& check) {
  if (options.bounds != nullptr && bracket.decides(n)) {
    const bool verdict = bracket.verdict(n);
    trace::metrics().add(verdict ? "bounds.pruned_lo" : "bounds.pruned_hi", 1);
    cached.record_bracket(kind, n, verdict, bracket.decided_by(n));
    return verdict;
  }
  if (order != nullptr && order->decides(n)) {
    const bool verdict = order->verdict(n);
    trace::metrics().add(verdict ? "order.pruned_lo" : "order.pruned_hi", 1);
    cached.record_bracket(kind, n, verdict, order->decided_by(n));
    return verdict;
  }
  if (options.bounds != nullptr || order != nullptr) {
    trace::metrics().add("bounds.decider_runs", 1);
  }
  return cached.holds(kind, n, check);
}

const spec::ObjectType& decider_type(const spec::ObjectType& type,
                                     const ProfileOptions& options) {
  if (options.bounds != nullptr && options.bounds->quotient_reduced) {
    return options.bounds->quotient;
  }
  return type;
}

/// The packed stepper for the decider subject when the AOT backend is
/// selected, else nullptr (the interpreter path). Compiled-in steppers hit
/// by structural fingerprint; misses rebuild into *storage — either way
/// the table is verified entry-for-entry against `subject`.
const spec::PackedDelta* packed_for_backend(
    const spec::ObjectType& subject, const ProfileOptions& options,
    std::unique_ptr<spec::PackedDelta>* storage) {
  if (options.backend != exec::Backend::kAot) return nullptr;
  return codegen::packed_for(subject, storage);
}

}  // namespace

Level discerning_level(const spec::ObjectType& type, int max_n,
                       const ProfileOptions& options) {
  const CachedVerdicts cached(type, options);
  const spec::ObjectType& subject = decider_type(type, options);
  const analysis::LevelBracket bracket =
      options.bounds != nullptr ? options.bounds->discerning
                                : analysis::LevelBracket{};
  std::unique_ptr<spec::PackedDelta> packed_storage;
  const spec::PackedDelta* packed =
      packed_for_backend(subject, options, &packed_storage);
  return scan_level(max_n, [&](int n) {
    return bounded_holds(cached, options, "discerning", bracket,
                         options.order_discerning, n, [&](int m) {
      return check_discerning(subject, m, options.mode, options.threads,
                              packed)
          .holds;
    });
  });
}

Level recording_level(const spec::ObjectType& type, int max_n,
                      const ProfileOptions& options) {
  const CachedVerdicts cached(type, options);
  const spec::ObjectType& subject = decider_type(type, options);
  const analysis::LevelBracket bracket =
      options.bounds != nullptr ? options.bounds->recording
                                : analysis::LevelBracket{};
  std::unique_ptr<spec::PackedDelta> packed_storage;
  const spec::PackedDelta* packed =
      packed_for_backend(subject, options, &packed_storage);
  return scan_level(max_n, [&](int n) {
    return bounded_holds(cached, options, "recording", bracket,
                         options.order_recording, n, [&](int m) {
      return check_recording(subject, m, options.mode, options.threads, packed)
          .holds;
    });
  });
}

Level discerning_level(const spec::ObjectType& type, int max_n, int threads) {
  ProfileOptions options;
  options.threads = threads;
  return discerning_level(type, max_n, options);
}

Level recording_level(const spec::ObjectType& type, int max_n, int threads) {
  ProfileOptions options;
  options.threads = threads;
  return recording_level(type, max_n, options);
}

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            const ProfileOptions& options) {
  TypeProfile profile;
  profile.type_name = type.name();
  profile.readable = type.is_readable();
  profile.discerning = discerning_level(type, max_n, options);
  profile.recording = recording_level(type, max_n, options);
  return profile;
}

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            int threads) {
  ProfileOptions options;
  options.threads = threads;
  return compute_profile(type, max_n, options);
}

}  // namespace rcons::hierarchy
