#include "hierarchy/consensus_number.hpp"

#include "reduction/type_canon.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

std::string Level::to_string() const {
  return (exact ? "" : ">= ") + std::to_string(value);
}

namespace {

template <typename Check>
Level scan_level(int max_n, const Check& holds_at) {
  RCONS_CHECK(max_n >= 1);
  Level level{1, true};
  for (int n = 2; n <= max_n; ++n) {
    if (!holds_at(n)) {
      return level;  // monotone: no larger n can hold
    }
    level.value = n;
  }
  level.exact = false;  // still held at the cap
  // A cap equal to 1 cannot certify exactness either way; treat value 1
  // reached without any successful n >= 2 as exact (handled above).
  if (level.value == 1) level.exact = true;
  return level;
}

// Wraps one per-n verdict in a cache lookup/store when a cache is wired.
// The key embeds the canonical type key (not the name), so a renamed or
// relabeled-but-isomorphic type hits the same entry; the crash budget is
// pinned to "inf" because both conditions quantify over all one-shot
// schedules regardless of crashes.
class CachedVerdicts {
 public:
  CachedVerdicts(const spec::ObjectType& type, const ProfileOptions& options)
      : options_(options) {
    if (options_.cache != nullptr && options_.cache->enabled()) {
      spec_key_ = reduction::canonicalize_type(type).key;
    }
  }

  template <typename Check>
  bool holds(const char* kind, int n, const Check& check) const {
    if (spec_key_.empty()) return check(n);
    const std::string key = std::string(kind) + "|n=" + std::to_string(n) +
                            "|z=inf|spec=" + spec_key_;
    if (std::optional<std::string> payload = options_.cache->lookup(key)) {
      if (*payload == "holds=1") return true;
      if (*payload == "holds=0") return false;
      // Unknown payload: treat as a miss and fall through to recompute.
    }
    const bool result = check(n);
    options_.cache->store(key, result ? "holds=1" : "holds=0");
    return result;
  }

 private:
  const ProfileOptions& options_;
  std::string spec_key_;
};

}  // namespace

Level discerning_level(const spec::ObjectType& type, int max_n,
                       const ProfileOptions& options) {
  const CachedVerdicts cached(type, options);
  return scan_level(max_n, [&](int n) {
    return cached.holds("discerning", n, [&](int m) {
      return check_discerning(type, m, options.mode, options.threads).holds;
    });
  });
}

Level recording_level(const spec::ObjectType& type, int max_n,
                      const ProfileOptions& options) {
  const CachedVerdicts cached(type, options);
  return scan_level(max_n, [&](int n) {
    return cached.holds("recording", n, [&](int m) {
      return check_recording(type, m, options.mode, options.threads).holds;
    });
  });
}

Level discerning_level(const spec::ObjectType& type, int max_n, int threads) {
  ProfileOptions options;
  options.threads = threads;
  return discerning_level(type, max_n, options);
}

Level recording_level(const spec::ObjectType& type, int max_n, int threads) {
  ProfileOptions options;
  options.threads = threads;
  return recording_level(type, max_n, options);
}

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            const ProfileOptions& options) {
  TypeProfile profile;
  profile.type_name = type.name();
  profile.readable = type.is_readable();
  profile.discerning = discerning_level(type, max_n, options);
  profile.recording = recording_level(type, max_n, options);
  return profile;
}

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            int threads) {
  ProfileOptions options;
  options.threads = threads;
  return compute_profile(type, max_n, options);
}

}  // namespace rcons::hierarchy
