#include "hierarchy/discerning.hpp"

#include "hierarchy/flat_bitset.hpp"
#include "hierarchy/parallel_scan.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

namespace {

/// DFS over the one-shot schedule tree. Every tree node is a schedule in
/// S(P); entering a node with last process j extends the shared prefix by
/// one operation, so each schedule is simulated in O(1) amortized. At each
/// nonempty node the pair (response_i, current value) is recorded into
/// R_{first_team, i} for every process i applied so far — this realizes
/// "v is the resulting value of the object" for every schedule at once.
/// Returns false as soon as a pair lands in both teams' sets for some i.
class DiscerningDfs {
 public:
  DiscerningDfs(const spec::ObjectType& type, const Assignment& a,
                const spec::PackedDelta* packed)
      : type_(type),
        packed_(packed),
        a_(a),
        n_(a.process_count()),
        pair_bits_(static_cast<std::size_t>(type.response_count()) *
                   static_cast<std::size_t>(type.value_count())),
        responses_(static_cast<std::size_t>(n_), 0),
        applied_() {
    r_.resize(2);
    for (auto& team_sets : r_) {
      team_sets.resize(static_cast<std::size_t>(n_));
      for (auto& set : team_sets) set.reset(pair_bits_);
    }
    applied_.reserve(static_cast<std::size_t>(n_));
  }

  bool run(std::uint64_t* nodes) {
    const bool ok = visit(0u, a_.initial_value, /*first_team=*/-1);
    if (nodes != nullptr) *nodes += node_count_;
    return ok;
  }

 private:
  bool visit(unsigned used_mask, spec::ValueId value, int first_team) {
    ++node_count_;
    if (first_team >= 0) {
      // Record (response_i, value) for every process applied in this
      // schedule; detect cross-team collisions eagerly.
      for (int i : applied_) {
        const std::size_t pair =
            static_cast<std::size_t>(
                responses_[static_cast<std::size_t>(i)]) *
                static_cast<std::size_t>(type_.value_count()) +
            static_cast<std::size_t>(value);
        if (r_[static_cast<std::size_t>(1 - first_team)]
              [static_cast<std::size_t>(i)].test(pair)) {
          return false;
        }
        r_[static_cast<std::size_t>(first_team)][static_cast<std::size_t>(i)]
            .set(pair);
      }
    }
    for (int j = 0; j < n_; ++j) {
      if (used_mask & (1u << j)) continue;
      const spec::Effect e =
          packed_ != nullptr
              ? packed_->effect(value, a_.ops[static_cast<std::size_t>(j)])
              : type_.apply(value, a_.ops[static_cast<std::size_t>(j)]);
      responses_[static_cast<std::size_t>(j)] = e.response;
      applied_.push_back(j);
      const int team =
          first_team >= 0 ? first_team : a_.team_of[static_cast<std::size_t>(j)];
      const bool ok = visit(used_mask | (1u << j), e.next_value, team);
      applied_.pop_back();
      if (!ok) return false;
    }
    return true;
  }

  const spec::ObjectType& type_;
  const spec::PackedDelta* packed_;
  const Assignment& a_;
  int n_;
  std::size_t pair_bits_;
  std::vector<spec::ResponseId> responses_;
  std::vector<int> applied_;
  // r_[team][process]: the set R_{team, process} as a pair-indexed bitset.
  std::vector<std::vector<FlatBitset>> r_;
  std::uint64_t node_count_ = 0;
};

}  // namespace

bool is_discerning_witness(const spec::ObjectType& type, const Assignment& a,
                           std::uint64_t* nodes,
                           const spec::PackedDelta* packed) {
  RCONS_CHECK(a.process_count() >= 2);
  RCONS_CHECK(a.team_size(0) >= 1 && a.team_size(1) >= 1);
  DiscerningDfs dfs(type, a, packed);
  return dfs.run(nodes);
}

DiscerningResult check_discerning(const spec::ObjectType& type, int n,
                                  SymmetryMode mode, int threads,
                                  const spec::PackedDelta* packed) {
  RCONS_CHECK_MSG(n >= 2, "n-discerning is defined for n >= 2");
  RCONS_CHECK_MSG(n <= 12, "schedule tree too large beyond n = 12");
  if (threads != 1) {
    detail::AssignmentScan scan = detail::scan_assignments_parallel(
        type, n, mode, threads,
        [&type, packed](const Assignment& a, std::uint64_t* nodes) {
      return is_discerning_witness(type, a, nodes, packed);
    });
    DiscerningResult result;
    result.holds = scan.holds;
    result.witness = std::move(scan.witness);
    result.stats = scan.stats;
    return result;
  }
  DiscerningResult result;
  for_each_assignment(type, n, mode, [&](const Assignment& a) {
    result.stats.assignments_tried += 1;
    if (is_discerning_witness(type, a, &result.stats.schedule_nodes, packed)) {
      result.holds = true;
      result.witness = a;
      return true;
    }
    return false;
  });
  return result;
}

DiscerningResult check_discerning(const spec::ObjectType& type, int n,
                                  bool use_symmetry, int threads) {
  return check_discerning(
      type, n, use_symmetry ? SymmetryMode::kCanonical : SymmetryMode::kNaive,
      threads);
}

}  // namespace rcons::hierarchy
