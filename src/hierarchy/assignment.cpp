#include "hierarchy/assignment.hpp"

#include <sstream>

#include "util/assert.hpp"
#include "util/combinatorics.hpp"

namespace rcons::hierarchy {

int Assignment::team_size(int team) const {
  int count = 0;
  for (int t : team_of) {
    if (t == team) ++count;
  }
  return count;
}

std::string Assignment::describe(const spec::ObjectType& type) const {
  std::ostringstream oss;
  oss << "u=" << type.value_name(initial_value);
  for (int team = 0; team <= 1; ++team) {
    oss << "  T_" << team << "={";
    bool first = true;
    for (int i = 0; i < process_count(); ++i) {
      if (team_of[static_cast<std::size_t>(i)] != team) continue;
      if (!first) oss << ", ";
      first = false;
      oss << "p" << i << ":" << type.op_name(ops[static_cast<std::size_t>(i)]);
    }
    oss << "}";
  }
  return oss.str();
}

bool for_each_canonical_assignment(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit) {
  RCONS_CHECK(n >= 2);
  const unsigned ops = static_cast<unsigned>(type.op_count());
  Assignment a;
  a.team_of.resize(static_cast<std::size_t>(n));
  a.ops.resize(static_cast<std::size_t>(n));

  bool found = false;
  for (spec::ValueId u = 0; u < type.value_count() && !found; ++u) {
    a.initial_value = u;
    // Team 0 gets processes 0..size0-1; by symmetry only team sizes and op
    // multisets matter, and swapping team labels is also a symmetry of both
    // conditions, so restrict to size0 <= size1.
    for (int size0 = 1; size0 <= n / 2 && !found; ++size0) {
      const int size1 = n - size0;
      for (int i = 0; i < n; ++i) {
        a.team_of[static_cast<std::size_t>(i)] = i < size0 ? 0 : 1;
      }
      for_each_multiset(ops, static_cast<unsigned>(size0),
                        [&](const std::vector<int>& ops0) {
        if (found) return;
        for_each_multiset(ops, static_cast<unsigned>(size1),
                          [&](const std::vector<int>& ops1) {
          if (found) return;
          if (size0 == size1 && ops1 < ops0) {
            return;  // label-swap symmetry for equal team sizes
          }
          for (int i = 0; i < size0; ++i) {
            a.ops[static_cast<std::size_t>(i)] =
                ops0[static_cast<std::size_t>(i)];
          }
          for (int i = 0; i < size1; ++i) {
            a.ops[static_cast<std::size_t>(size0 + i)] =
                ops1[static_cast<std::size_t>(i)];
          }
          if (visit(a)) found = true;
        });
      });
    }
  }
  return found;
}

bool for_each_assignment_naive(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit) {
  RCONS_CHECK(n >= 2);
  Assignment a;
  a.team_of.resize(static_cast<std::size_t>(n));
  a.ops.resize(static_cast<std::size_t>(n));

  bool found = false;
  for (spec::ValueId u = 0; u < type.value_count() && !found; ++u) {
    a.initial_value = u;
    for_each_bipartition(static_cast<unsigned>(n), /*ordered=*/true,
                         [&](const std::vector<int>& team_of) {
      if (found) return;
      a.team_of = team_of;
      for_each_assignment(static_cast<unsigned>(type.op_count()),
                          static_cast<unsigned>(n),
                          [&](const std::vector<int>& ops) {
        if (found) return;
        for (int i = 0; i < n; ++i) {
          a.ops[static_cast<std::size_t>(i)] = ops[static_cast<std::size_t>(i)];
        }
        if (visit(a)) found = true;
      });
    });
  }
  return found;
}

}  // namespace rcons::hierarchy
