#include "hierarchy/assignment.hpp"

#include <algorithm>
#include <sstream>
#include <tuple>

#include "reduction/type_canon.hpp"
#include "util/assert.hpp"
#include "util/combinatorics.hpp"

namespace rcons::hierarchy {

int Assignment::team_size(int team) const {
  int count = 0;
  for (int t : team_of) {
    if (t == team) ++count;
  }
  return count;
}

std::string Assignment::describe(const spec::ObjectType& type) const {
  std::ostringstream oss;
  oss << "u=" << type.value_name(initial_value);
  for (int team = 0; team <= 1; ++team) {
    oss << "  T_" << team << "={";
    bool first = true;
    for (int i = 0; i < process_count(); ++i) {
      if (team_of[static_cast<std::size_t>(i)] != team) continue;
      if (!first) oss << ", ";
      first = false;
      oss << "p" << i << ":" << type.op_name(ops[static_cast<std::size_t>(i)]);
    }
    oss << "}";
  }
  return oss.str();
}

bool for_each_canonical_assignment(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit) {
  RCONS_CHECK(n >= 2);
  const unsigned ops = static_cast<unsigned>(type.op_count());
  Assignment a;
  a.team_of.resize(static_cast<std::size_t>(n));
  a.ops.resize(static_cast<std::size_t>(n));

  bool found = false;
  for (spec::ValueId u = 0; u < type.value_count() && !found; ++u) {
    a.initial_value = u;
    // Team 0 gets processes 0..size0-1; by symmetry only team sizes and op
    // multisets matter, and swapping team labels is also a symmetry of both
    // conditions, so restrict to size0 <= size1.
    for (int size0 = 1; size0 <= n / 2 && !found; ++size0) {
      const int size1 = n - size0;
      for (int i = 0; i < n; ++i) {
        a.team_of[static_cast<std::size_t>(i)] = i < size0 ? 0 : 1;
      }
      for_each_multiset(ops, static_cast<unsigned>(size0),
                        [&](const std::vector<int>& ops0) {
        if (found) return;
        for_each_multiset(ops, static_cast<unsigned>(size1),
                          [&](const std::vector<int>& ops1) {
          if (found) return;
          if (size0 == size1 && ops1 < ops0) {
            return;  // label-swap symmetry for equal team sizes
          }
          for (int i = 0; i < size0; ++i) {
            a.ops[static_cast<std::size_t>(i)] =
                ops0[static_cast<std::size_t>(i)];
          }
          for (int i = 0; i < size1; ++i) {
            a.ops[static_cast<std::size_t>(size0 + i)] =
                ops1[static_cast<std::size_t>(i)];
          }
          if (visit(a)) found = true;
        });
      });
    }
  }
  return found;
}

bool for_each_assignment_naive(
    const spec::ObjectType& type, int n,
    const std::function<bool(const Assignment&)>& visit) {
  RCONS_CHECK(n >= 2);
  Assignment a;
  a.team_of.resize(static_cast<std::size_t>(n));
  a.ops.resize(static_cast<std::size_t>(n));

  bool found = false;
  for (spec::ValueId u = 0; u < type.value_count() && !found; ++u) {
    a.initial_value = u;
    for_each_bipartition(static_cast<unsigned>(n), /*ordered=*/true,
                         [&](const std::vector<int>& team_of) {
      if (found) return;
      a.team_of = team_of;
      rcons::for_each_assignment(static_cast<unsigned>(type.op_count()),
                                 static_cast<unsigned>(n),
                                 [&](const std::vector<int>& ops) {
        if (found) return;
        for (int i = 0; i < n; ++i) {
          a.ops[static_cast<std::size_t>(i)] = ops[static_cast<std::size_t>(i)];
        }
        if (visit(a)) found = true;
      });
    });
  }
  return found;
}

namespace {

// A canonical assignment as the enumerator's lexicographic key: the initial
// value, then the two sorted op multisets in team order. Canonical
// assignments and keys are in bijection, and the enumerator emits keys in
// strictly increasing order.
struct AssignmentKey {
  spec::ValueId u;
  std::vector<spec::OpId> ops0;
  std::vector<spec::OpId> ops1;

  friend bool operator<(const AssignmentKey& a, const AssignmentKey& b) {
    return std::tie(a.u, a.ops0, a.ops1) < std::tie(b.u, b.ops0, b.ops1);
  }
};

AssignmentKey key_of(const Assignment& a) {
  AssignmentKey key;
  key.u = a.initial_value;
  const int size0 = a.team_size(0);
  key.ops0.assign(a.ops.begin(), a.ops.begin() + size0);
  key.ops1.assign(a.ops.begin() + size0, a.ops.end());
  return key;
}

// The canonical assignment key of phi applied to `key`: relabel the value
// and the ops, then re-normalize exactly as the enumerator would (sorted op
// multisets; for equal team sizes the smaller multiset is team 0).
AssignmentKey apply_automorphism(const reduction::TypeRelabeling& phi,
                                 const AssignmentKey& key) {
  AssignmentKey image;
  image.u = phi.value_perm[static_cast<std::size_t>(key.u)];
  image.ops0.reserve(key.ops0.size());
  image.ops1.reserve(key.ops1.size());
  for (spec::OpId o : key.ops0) {
    image.ops0.push_back(phi.op_perm[static_cast<std::size_t>(o)]);
  }
  for (spec::OpId o : key.ops1) {
    image.ops1.push_back(phi.op_perm[static_cast<std::size_t>(o)]);
  }
  std::sort(image.ops0.begin(), image.ops0.end());
  std::sort(image.ops1.begin(), image.ops1.end());
  if (image.ops0.size() == image.ops1.size() && image.ops1 < image.ops0) {
    std::swap(image.ops0, image.ops1);
  }
  return image;
}

}  // namespace

bool parse_symmetry_mode(const std::string& text, SymmetryMode* out) {
  if (text == "naive") {
    *out = SymmetryMode::kNaive;
  } else if (text == "canonical") {
    *out = SymmetryMode::kCanonical;
  } else if (text == "automorphism") {
    *out = SymmetryMode::kAutomorphism;
  } else {
    return false;
  }
  return true;
}

const char* symmetry_mode_name(SymmetryMode mode) {
  switch (mode) {
    case SymmetryMode::kNaive:
      return "naive";
    case SymmetryMode::kCanonical:
      return "canonical";
    case SymmetryMode::kAutomorphism:
      return "automorphism";
  }
  return "?";
}

bool for_each_assignment(const spec::ObjectType& type, int n,
                         SymmetryMode mode,
                         const std::function<bool(const Assignment&)>& visit) {
  switch (mode) {
    case SymmetryMode::kNaive:
      return for_each_assignment_naive(type, n, visit);
    case SymmetryMode::kCanonical:
      return for_each_canonical_assignment(type, n, visit);
    case SymmetryMode::kAutomorphism:
      break;
  }
  const std::vector<reduction::TypeRelabeling> autos =
      reduction::type_automorphisms(type);
  if (autos.size() <= 1) {
    return for_each_canonical_assignment(type, n, visit);
  }
  // Visit only orbit minima: an assignment whose image under some
  // automorphism is lexicographically smaller has already been covered (the
  // smaller image is itself canonical and therefore enumerated earlier).
  // Automorphisms act on canonical assignments — relabel-then-renormalize
  // is a group action because renormalization only permutes process slots,
  // which the key already quotients away — so each orbit keeps exactly its
  // minimum.
  return for_each_canonical_assignment(type, n, [&](const Assignment& a) {
    const AssignmentKey key = key_of(a);
    for (const reduction::TypeRelabeling& phi : autos) {
      if (reduction::is_identity(phi)) continue;
      if (apply_automorphism(phi, key) < key) return false;
    }
    return visit(a);
  });
}

}  // namespace rcons::hierarchy
