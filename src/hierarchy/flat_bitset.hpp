// A tiny fixed-capacity bitset over raw words, sized at runtime.
//
// The checkers track the sets R_{x,j} (pairs of response x value) and U_x
// (values) as bitsets; capacities are response_count*value_count and
// value_count respectively — tens to hundreds of bits — and the sets are
// cleared once per candidate assignment, so a flat vector of words beats
// std::unordered_set by orders of magnitude here.
#pragma once

#include <cstdint>
#include <vector>

#include "util/assert.hpp"

namespace rcons::hierarchy {

class FlatBitset {
 public:
  FlatBitset() = default;

  explicit FlatBitset(std::size_t bits)
      : bits_(bits), words_((bits + 63) / 64, 0) {}

  void reset(std::size_t bits) {
    bits_ = bits;
    words_.assign((bits + 63) / 64, 0);
  }

  void clear() {
    for (auto& w : words_) w = 0;
  }

  bool test(std::size_t i) const {
    RCONS_CHECK(i < bits_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void set(std::size_t i) {
    RCONS_CHECK(i < bits_);
    words_[i >> 6] |= std::uint64_t{1} << (i & 63);
  }

  bool intersects(const FlatBitset& other) const {
    const std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }

  std::size_t size() const { return bits_; }

 private:
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace rcons::hierarchy
