// Witness enumeration: ALL (value, partition, op-assignment) witnesses of
// the discerning / recording conditions, up to process-relabelling
// symmetry, rather than just the first one found.
//
// Motivation: the recording-consensus tree (algo/recording_consensus)
// needs non-hiding witnesses; experiments want witness COUNTS (how
// constrained is a type?); and the examples print witnesses so a reader
// can see *why* e.g. compare-and-swap records first teams at every level.
#pragma once

#include <cstdint>
#include <vector>

#include "hierarchy/assignment.hpp"
#include "spec/object_type.hpp"

namespace rcons::hierarchy {

enum class WitnessKind {
  kDiscerning,
  kRecording,
  kRecordingNonhiding,
};

struct WitnessEnumeration {
  std::vector<Assignment> witnesses;  // up to max_count
  std::uint64_t assignments_tried = 0;
  std::uint64_t total_found = 0;  // counts past max_count too
};

/// Enumerates canonical witnesses of `kind` for (type, n); stores at most
/// `max_count` of them but counts all.
WitnessEnumeration enumerate_witnesses(const spec::ObjectType& type, int n,
                                       WitnessKind kind,
                                       std::size_t max_count = 16);

}  // namespace rcons::hierarchy
