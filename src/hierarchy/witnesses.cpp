#include "hierarchy/witnesses.hpp"

#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"

namespace rcons::hierarchy {

WitnessEnumeration enumerate_witnesses(const spec::ObjectType& type, int n,
                                       WitnessKind kind,
                                       std::size_t max_count) {
  WitnessEnumeration result;
  for_each_canonical_assignment(type, n, [&](const Assignment& a) {
    result.assignments_tried += 1;
    bool holds = false;
    switch (kind) {
      case WitnessKind::kDiscerning:
        holds = is_discerning_witness(type, a);
        break;
      case WitnessKind::kRecording:
        holds = is_recording_witness(type, a);
        break;
      case WitnessKind::kRecordingNonhiding:
        holds = is_nonhiding_recording_witness(type, a);
        break;
    }
    if (holds) {
      result.total_found += 1;
      if (result.witnesses.size() < max_count) {
        result.witnesses.push_back(a);
      }
    }
    return false;  // never stop early: we want them all
  });
  return result;
}

}  // namespace rcons::hierarchy
