// The n-recording decision procedure (DFFR's characterization; the
// condition this paper proves *necessary* for n-process recoverable
// wait-free consensus — Theorem 13 — making it exact for deterministic
// readable types).
//
// A deterministic type T is n-recording if there exist a value u, a
// partition into two nonempty teams T_0/T_1, and an operation o_i per
// process such that
//   (1) U_0 and U_1 are disjoint, where U_x is the set of resulting object
//       values over every nonempty schedule in S(P) starting with a T_x
//       process ("the value of the object records the team of the first
//       process to apply its operation"), and
//   (2) if u is itself in some U_x (the first team can be "hidden" by
//       driving the object back to its initial value), then the opposite
//       team has exactly one member.
// Condition (2) is what separates recording from discerning in the
// recoverable world: a hiding schedule must already contain every opposite-
// team process, which is only harmless when that team is a singleton.
#pragma once

#include <optional>

#include "hierarchy/assignment.hpp"
#include "spec/object_type.hpp"
#include "spec/packed_delta.hpp"

namespace rcons::hierarchy {

struct RecordingResult {
  bool holds = false;
  std::optional<Assignment> witness;
  EnumerationStats stats;
};

/// Evaluates one candidate assignment against conditions (1) and (2).
bool is_recording_witness(const spec::ObjectType& type, const Assignment& a,
                          std::uint64_t* nodes = nullptr);

/// Like is_recording_witness but additionally requires the witness to be
/// NON-HIDING: no nonempty one-shot schedule returns the object to u
/// (u not in U_0 union U_1). Non-hiding witnesses make condition (2)
/// vacuous and — crucially for the recording-based recoverable consensus
/// algorithm — let a recovering process conclude from a read of u that it
/// has not yet applied its operation, giving at-most-once application for
/// free (see algo/recording_consensus.hpp).
bool is_nonhiding_recording_witness(const spec::ObjectType& type,
                                    const Assignment& a,
                                    std::uint64_t* nodes = nullptr);

/// Decides whether `type` is n-recording (n >= 2) over the enumeration
/// selected by `mode`. `threads` follows the SafetyOptions contract: 1 =
/// serial scan, > 1 = batch-parallel scan with bit-identical witness and
/// stats, 0 = hardware threads. A non-null `packed` (the AOT backend)
/// steps the schedule tree through the branch-free table instead of
/// ObjectType::apply — it must agree with `type` entry for entry, so
/// verdict, witness, and stats are identical either way.
RecordingResult check_recording(const spec::ObjectType& type, int n,
                                SymmetryMode mode, int threads = 1,
                                const spec::PackedDelta* packed = nullptr);

/// Historical entry point: `use_symmetry` selects kCanonical (default) or
/// kNaive.
RecordingResult check_recording(const spec::ObjectType& type, int n,
                                bool use_symmetry = true, int threads = 1);

/// Decides whether `type` has a NON-HIDING n-recording witness (a strictly
/// stronger property than n-recording). `packed` follows the
/// check_recording contract.
RecordingResult check_recording_nonhiding(
    const spec::ObjectType& type, int n, SymmetryMode mode, int threads = 1,
    const spec::PackedDelta* packed = nullptr);

RecordingResult check_recording_nonhiding(const spec::ObjectType& type, int n,
                                          bool use_symmetry = true,
                                          int threads = 1);

/// For a valid recording witness, computes the decode table mapping each
/// object value to the team whose member applied first (per the U_x sets),
/// or -1 for values unreachable by one-shot schedules. This is the lookup a
/// consensus algorithm uses to turn a read of the object into the identity
/// of the first team.
std::vector<int> compute_value_teams(const spec::ObjectType& type,
                                     const Assignment& a);

}  // namespace rcons::hierarchy
