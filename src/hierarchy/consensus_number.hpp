// Computing consensus numbers and recoverable consensus numbers.
//
// For deterministic readable types the two characterizations are exact:
//   * consensus number  = max { n : T is n-discerning }   (Ruppert), and
//   * recoverable consensus number = max { n : T is n-recording }
//     (sufficiency: DFFR Theorem 8; necessity: this paper's Theorem 13),
// with both maxima read as 1 when no n >= 2 qualifies (registers alone
// solve 1-process consensus). Both conditions are monotone in n (dropping
// a process from a team of size >= 2 preserves a witness), so the maxima
// are found by scanning upward until the first failure; a property test
// validates the monotonicity empirically across the catalog.
//
// For non-readable deterministic types the conditions remain *necessary*
// (Ruppert; this paper's Theorem 13), so the computed limits are upper
// bounds on the true numbers; TypeProfile records which interpretation
// applies.
#pragma once

#include <string>

#include "analysis/static_bounds/static_bounds.hpp"
#include "exec/backend.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/object_type.hpp"

namespace rcons::hierarchy {

/// A possibly-capped level in a hierarchy: `value` with exact=false means
/// "at least value" (the scan hit the cap while the condition still held,
/// e.g. compare-and-swap which is n-discerning for every n).
struct Level {
  int value = 1;
  bool exact = true;

  std::string to_string() const;
  friend bool operator==(const Level&, const Level&) = default;
};

/// Knobs shared by the level scans and compute_profile.
struct ProfileOptions {
  /// Follows the SafetyOptions contract (1 = serial, > 1 = parallel
  /// bit-identical, 0 = hardware threads); applies to each per-n scan.
  int threads = 1;
  SymmetryMode mode = SymmetryMode::kCanonical;
  /// Optional persistent verdict cache. When set and enabled, each per-n
  /// verdict is looked up under
  ///   <kind> "|n=" <n> "|z=inf|spec=" <canonical type key>
  /// before running the checker and stored after. Cached hits carry no
  /// witness or stats — only the holds bit, which is all the level scan
  /// consumes — so levels are identical with a cold, warm, or absent cache.
  const reduction::VerdictCache* cache = nullptr;
  /// Optional static pre-verdict bounds for the SAME type being profiled
  /// (caller-owned; see analysis/static_bounds). When set, per-n verdicts
  /// the brackets decide skip the exact decider entirely (stored into the
  /// cache as "holds=X|by=SAxxx" so warm runs still hit), and undecided
  /// verdicts run the deciders on the bounds quotient — which has the same
  /// levels by construction — while the cache stays keyed on the original
  /// type's canonical form.
  const analysis::BoundsReport* bounds = nullptr;
  /// Optional order-lattice implied brackets for the SAME type being
  /// profiled (caller-owned; see analysis/order/lattice.hpp). Consulted
  /// with the identical skip-plus-provenance pattern as `bounds`: per-n
  /// verdicts a bracket decides skip the exact decider and are seeded into
  /// the cache as "holds=X|by=SA009..SA012". Soundness rests on the
  /// certified simulation facts the lattice re-validated on intake plus
  /// the explored verdicts of related types; the 300-seed differential in
  /// tests/order_test.cpp pins containment.
  const analysis::LevelBracket* order_discerning = nullptr;
  const analysis::LevelBracket* order_recording = nullptr;
  /// Which exec backend the per-n deciders step the schedule tree with
  /// (DESIGN.md §14): kInterp (default) is ObjectType::apply; kAot looks
  /// up — or rebuilds and verifies — the packed stepper for the decider
  /// subject (the bounds quotient when one is wired) and runs the DFS over
  /// it. Levels, witnesses, and stats are bit-identical across backends.
  exec::Backend backend = exec::Backend::kInterp;
};

/// The persistent verdict-cache key for one per-n verdict: `kind` is
/// "discerning" or "recording", `spec_key` the canonical type key
/// (reduction::canonicalize_type(type).key). Exposed so cache seeders —
/// the order-lattice propagator, tests — write entries under exactly the
/// key the profile scans read back.
std::string verdict_cache_key(const char* kind, int n,
                              const std::string& spec_key);

/// max { n in [2, max_n] : T is n-discerning }, else 1. `threads` follows
/// the SafetyOptions contract (1 = serial, > 1 = parallel bit-identical,
/// 0 = hardware threads) and applies to each per-n checker scan.
Level discerning_level(const spec::ObjectType& type, int max_n,
                       int threads = 1);

/// max { n in [2, max_n] : T is n-recording }, else 1.
Level recording_level(const spec::ObjectType& type, int max_n,
                      int threads = 1);

Level discerning_level(const spec::ObjectType& type, int max_n,
                       const ProfileOptions& options);

Level recording_level(const spec::ObjectType& type, int max_n,
                      const ProfileOptions& options);

/// The full computed profile of one type.
struct TypeProfile {
  std::string type_name;
  bool readable = false;
  Level discerning;
  Level recording;

  /// For readable types these ARE the consensus / recoverable consensus
  /// numbers; for non-readable types they are upper bounds (see header
  /// comment).
  Level consensus_number() const { return discerning; }
  Level recoverable_consensus_number() const { return recording; }
};

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            int threads = 1);

TypeProfile compute_profile(const spec::ObjectType& type, int max_n,
                            const ProfileOptions& options);

}  // namespace rcons::hierarchy
