#include "hierarchy/recording.hpp"

#include "hierarchy/flat_bitset.hpp"
#include "hierarchy/parallel_scan.hpp"
#include "util/assert.hpp"

namespace rcons::hierarchy {

namespace {

class RecordingDfs {
 public:
  RecordingDfs(const spec::ObjectType& type, const Assignment& a,
               bool require_nonhiding,
               const spec::PackedDelta* packed = nullptr)
      : type_(type),
        packed_(packed),
        a_(a),
        n_(a.process_count()),
        require_nonhiding_(require_nonhiding) {
    u_[0].reset(static_cast<std::size_t>(type.value_count()));
    u_[1].reset(static_cast<std::size_t>(type.value_count()));
  }

  bool run(std::uint64_t* nodes) {
    bool ok = visit(0u, a_.initial_value, /*first_team=*/-1);
    if (ok && !require_nonhiding_) {
      // Condition (2): u in U_x forces |T_xbar| = 1. (With nonhiding
      // requested, reaching u at all already failed the DFS.)
      for (int x = 0; x <= 1 && ok; ++x) {
        if (u_[static_cast<std::size_t>(x)].test(
                static_cast<std::size_t>(a_.initial_value)) &&
            a_.team_size(1 - x) != 1) {
          ok = false;
        }
      }
    }
    if (nodes != nullptr) *nodes += node_count_;
    return ok;
  }

  /// After a successful run: value -> first team decode table.
  std::vector<int> value_teams() const {
    std::vector<int> teams(static_cast<std::size_t>(type_.value_count()), -1);
    for (int v = 0; v < type_.value_count(); ++v) {
      for (int x = 0; x <= 1; ++x) {
        if (u_[static_cast<std::size_t>(x)].test(static_cast<std::size_t>(v))) {
          teams[static_cast<std::size_t>(v)] = x;
        }
      }
    }
    return teams;
  }

 private:
  bool visit(unsigned used_mask, spec::ValueId value, int first_team) {
    ++node_count_;
    if (first_team >= 0) {
      if (require_nonhiding_ && value == a_.initial_value) {
        return false;  // some nonempty schedule hides the first team
      }
      // Condition (1): the resulting value must not be reachable from both
      // first teams.
      if (u_[static_cast<std::size_t>(1 - first_team)].test(
              static_cast<std::size_t>(value))) {
        return false;
      }
      u_[static_cast<std::size_t>(first_team)].set(
          static_cast<std::size_t>(value));
    }
    for (int j = 0; j < n_; ++j) {
      if (used_mask & (1u << j)) continue;
      const spec::Effect e =
          packed_ != nullptr
              ? packed_->effect(value, a_.ops[static_cast<std::size_t>(j)])
              : type_.apply(value, a_.ops[static_cast<std::size_t>(j)]);
      const int team =
          first_team >= 0 ? first_team : a_.team_of[static_cast<std::size_t>(j)];
      if (!visit(used_mask | (1u << j), e.next_value, team)) return false;
    }
    return true;
  }

  const spec::ObjectType& type_;
  const spec::PackedDelta* packed_;
  const Assignment& a_;
  int n_;
  bool require_nonhiding_;
  FlatBitset u_[2];
  std::uint64_t node_count_ = 0;
};

RecordingResult check_impl(const spec::ObjectType& type, int n,
                           SymmetryMode mode, bool require_nonhiding,
                           int threads, const spec::PackedDelta* packed) {
  RCONS_CHECK_MSG(n >= 2, "n-recording is defined for n >= 2");
  RCONS_CHECK_MSG(n <= 12, "schedule tree too large beyond n = 12");
  if (threads != 1) {
    detail::AssignmentScan scan = detail::scan_assignments_parallel(
        type, n, mode, threads,
        [&type, require_nonhiding, packed](const Assignment& a,
                                           std::uint64_t* nodes) {
      RecordingDfs dfs(type, a, require_nonhiding, packed);
      return dfs.run(nodes);
    });
    RecordingResult result;
    result.holds = scan.holds;
    result.witness = std::move(scan.witness);
    result.stats = scan.stats;
    return result;
  }
  RecordingResult result;
  for_each_assignment(type, n, mode, [&](const Assignment& a) {
    result.stats.assignments_tried += 1;
    RecordingDfs dfs(type, a, require_nonhiding, packed);
    if (dfs.run(&result.stats.schedule_nodes)) {
      result.holds = true;
      result.witness = a;
      return true;
    }
    return false;
  });
  return result;
}

}  // namespace

bool is_recording_witness(const spec::ObjectType& type, const Assignment& a,
                          std::uint64_t* nodes) {
  RCONS_CHECK(a.process_count() >= 2);
  RCONS_CHECK(a.team_size(0) >= 1 && a.team_size(1) >= 1);
  RecordingDfs dfs(type, a, /*require_nonhiding=*/false);
  return dfs.run(nodes);
}

bool is_nonhiding_recording_witness(const spec::ObjectType& type,
                                    const Assignment& a,
                                    std::uint64_t* nodes) {
  RCONS_CHECK(a.process_count() >= 2);
  RCONS_CHECK(a.team_size(0) >= 1 && a.team_size(1) >= 1);
  RecordingDfs dfs(type, a, /*require_nonhiding=*/true);
  return dfs.run(nodes);
}

RecordingResult check_recording(const spec::ObjectType& type, int n,
                                SymmetryMode mode, int threads,
                                const spec::PackedDelta* packed) {
  return check_impl(type, n, mode, /*require_nonhiding=*/false, threads,
                    packed);
}

RecordingResult check_recording(const spec::ObjectType& type, int n,
                                bool use_symmetry, int threads) {
  return check_recording(
      type, n, use_symmetry ? SymmetryMode::kCanonical : SymmetryMode::kNaive,
      threads);
}

RecordingResult check_recording_nonhiding(const spec::ObjectType& type, int n,
                                          SymmetryMode mode, int threads,
                                          const spec::PackedDelta* packed) {
  return check_impl(type, n, mode, /*require_nonhiding=*/true, threads,
                    packed);
}

RecordingResult check_recording_nonhiding(const spec::ObjectType& type, int n,
                                          bool use_symmetry, int threads) {
  return check_recording_nonhiding(
      type, n, use_symmetry ? SymmetryMode::kCanonical : SymmetryMode::kNaive,
      threads);
}

std::vector<int> compute_value_teams(const spec::ObjectType& type,
                                     const Assignment& a) {
  RecordingDfs dfs(type, a, /*require_nonhiding=*/false);
  std::uint64_t nodes = 0;
  const bool ok = dfs.run(&nodes);
  RCONS_CHECK_MSG(ok, "compute_value_teams requires a valid witness");
  return dfs.value_teams();
}

}  // namespace rcons::hierarchy
