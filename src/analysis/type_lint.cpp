#include "analysis/type_lint.hpp"

#include <string>
#include <vector>

#include "analysis/rules.hpp"

namespace rcons::analysis {

namespace {

using spec::Effect;
using spec::ObjectType;
using spec::OpId;
using spec::ResponseId;
using spec::ValueId;

std::vector<bool> reachable_mask(const ObjectType& type, ValueId initial) {
  std::vector<bool> mask(static_cast<std::size_t>(type.value_count()), false);
  for (ValueId v : type.reachable_values(initial)) {
    mask[static_cast<std::size_t>(v)] = true;
  }
  return mask;
}

bool op_preserves_all_values(const ObjectType& type, OpId op) {
  for (ValueId v = 0; v < type.value_count(); ++v) {
    if (type.apply(v, op).next_value != v) return false;
  }
  return true;
}

/// Returns a pair of distinct values sharing a response under `op`,
/// restricted to values where `mask` is true; (-1, -1) if injective there.
std::pair<ValueId, ValueId> find_alias(const ObjectType& type, OpId op,
                                       const std::vector<bool>& mask) {
  std::vector<ValueId> owner(static_cast<std::size_t>(type.response_count()),
                             -1);
  for (ValueId v = 0; v < type.value_count(); ++v) {
    if (!mask[static_cast<std::size_t>(v)]) continue;
    const ResponseId r = type.apply(v, op).response;
    ValueId& first = owner[static_cast<std::size_t>(r)];
    if (first != -1) return {first, v};
    first = v;
  }
  return {-1, -1};
}

/// True if applying `op` twice always lands where applying it once does.
bool op_is_idempotent(const ObjectType& type, OpId op) {
  for (ValueId v = 0; v < type.value_count(); ++v) {
    const ValueId once = type.apply(v, op).next_value;
    if (type.apply(once, op).next_value != once) return false;
  }
  return true;
}

void audit_table(const ObjectType& type, Report& report) {
  if (type.value_count() <= 0 || type.op_count() <= 0) {
    report.add(make_diagnostic(
        kRuleTotalityAudit, type.name(), "",
        "type declares no values or no ops", "declare at least one value "
        "and one operation"));
    return;
  }
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      const Effect& e = type.apply(v, op);
      if (e.next_value < 0 || e.next_value >= type.value_count() ||
          e.response < 0 || e.response >= type.response_count()) {
        report.add(make_diagnostic(
            kRuleTotalityAudit, type.name(),
            "value '" + type.value_name(v) + "', op '" + type.op_name(op) +
                "'",
            "transition leaves the declared value/response space",
            "rebuild the type through TypeBuilder, which validates ids"));
      }
    }
  }
}

}  // namespace

Report lint_type(const ObjectType& type, const TypeLintOptions& options) {
  Report report;
  audit_table(type, report);
  if (!report.empty()) return report;  // table unusable; rules would lie

  const ValueId initial = options.initial.value_or(0);
  const std::vector<bool> reachable = reachable_mask(type, initial);
  const std::vector<bool> all(static_cast<std::size_t>(type.value_count()),
                              true);

  // TS006 — non-deterministic rows observed by the parser.
  for (const spec::DuplicateRow& dup : options.duplicate_rows) {
    report.add(make_diagnostic(
        kRuleNondeterministicRow, type.name(),
        "line " + std::to_string(dup.line),
        "row redefines (" + dup.value + ", " + dup.op + ") first specified " +
            (dup.first_line > 0 ? "on line " + std::to_string(dup.first_line)
                                : "by a readop directive"),
        "delete one of the rows; the parser silently keeps the last"));
  }

  // TS001 — values unreachable from the initial value.
  for (ValueId v = 0; v < type.value_count(); ++v) {
    if (reachable[static_cast<std::size_t>(v)]) continue;
    Diagnostic d = make_diagnostic(
        kRuleUnreachableValue, type.name(), "value '" + type.value_name(v) +
            "'",
        "unreachable from " +
            std::string(options.initial.has_value() ? "declared initial "
                                                    : "assumed initial ") +
            "value '" + type.value_name(initial) + "'",
        options.initial.has_value()
            ? "remove the value or fix the transitions that should reach it"
            : "declare `initial <value>` to make reachability checkable");
    // Without a designated initial value this is only a smell: any value
    // can serve as an object's initial value in an assignment.
    if (!options.initial.has_value()) d.severity = Severity::kNote;
    report.add(d);
  }

  // Per-op rules.
  for (OpId op = 0; op < type.op_count(); ++op) {
    const bool preserving = op_preserves_all_values(type, op);

    // TS002 — dead op: self-loop everywhere with one constant response.
    bool dead = preserving;
    if (dead) {
      const ResponseId r0 = type.apply(0, op).response;
      for (ValueId v = 1; v < type.value_count() && dead; ++v) {
        if (type.apply(v, op).response != r0) dead = false;
      }
      if (type.value_count() < 2) dead = false;  // trivially constant
    }
    if (dead) {
      report.add(make_diagnostic(
          kRuleDeadOp, type.name(), "op '" + type.op_name(op) + "'",
          "every transition is a self-loop returning '" +
              type.response_name(type.apply(0, op).response) +
              "': the op can neither change nor observe the value",
          "remove the op; it only inflates the schedule space S(P)"));
    }

    // TS003 / TS004 — aliased responses on value-preserving ops.
    if (preserving && !dead && !type.op_is_read(op)) {
      const auto [a, b] = find_alias(type, op, reachable);
      if (a != -1) {
        report.add(make_diagnostic(
            kRuleAliasedResponse, type.name(), "op '" + type.op_name(op) +
                "'",
            "value-preserving but responses alias values '" +
                type.value_name(a) + "' and '" + type.value_name(b) +
                "': cannot serve as a Read",
            "give each value a distinct response to restore readability"));
      } else if (find_alias(type, op, all).first != -1) {
        const auto [ua, ub] = find_alias(type, op, all);
        report.add(make_diagnostic(
            kRuleShadowedRead, type.name(), "op '" + type.op_name(op) + "'",
            "a Read on every reachable value, but values '" +
                type.value_name(ua) + "' and '" + type.value_name(ub) +
                "' (at least one unreachable) share a response, so "
                "op_is_read rejects it",
            "disambiguate the unreachable values' responses or delete them"));
      }
    }

    // TS007 — informational classification.
    if (options.classify_ops) {
      int self_loops = 0;
      for (ValueId v = 0; v < type.value_count(); ++v) {
        if (type.apply(v, op).next_value == v) ++self_loops;
      }
      const char* kind = type.op_is_read(op)          ? "read"
                         : preserving                 ? "accessor"
                         : op_is_idempotent(type, op) ? "idempotent mutator"
                                                      : "mutator";
      report.add(make_diagnostic(
          kRuleOpClassification, type.name(), "op '" + type.op_name(op) + "'",
          std::string(kind) + ", " + std::to_string(self_loops) + "/" +
              std::to_string(type.value_count()) + " self-loops",
          ""));
    }
  }

  // TS005 — declared responses never produced.
  std::vector<bool> used(static_cast<std::size_t>(type.response_count()),
                         false);
  for (ValueId v = 0; v < type.value_count(); ++v) {
    for (OpId op = 0; op < type.op_count(); ++op) {
      used[static_cast<std::size_t>(type.apply(v, op).response)] = true;
    }
  }
  for (ResponseId r = 0; r < type.response_count(); ++r) {
    if (used[static_cast<std::size_t>(r)]) continue;
    report.add(make_diagnostic(
        kRuleUnusedResponse, type.name(), "response '" +
            type.response_name(r) + "'",
        "declared but never produced by any transition",
        "remove the response or add the transition that should return it"));
  }

  return report;
}

Report lint_type_text(std::string_view text, std::string_view subject_hint) {
  const spec::ParseResult parsed = spec::parse_type(text);
  if (!parsed.ok()) {
    Report report;
    report.add(make_diagnostic(
        kRuleTotalityAudit, std::string(subject_hint),
        "line " + std::to_string(parsed.error_line), parsed.error,
        "fix the file until `rcons_cli show <file>` accepts it"));
    return report;
  }
  TypeLintOptions options;
  options.initial = parsed.declared_initial;
  options.duplicate_rows = parsed.duplicates;
  return lint_type(*parsed.type, options);
}

}  // namespace rcons::analysis
