// The rule registry: the single source of truth for every lint rule.
//
// Each rule has a stable ID (TSxxx for type-spec rules, PLxxx for protocol
// rules), a kebab-case name, a default severity, and a one-line summary of
// the paper precondition or runtime invariant it guards. The linters fetch
// rules from here so IDs, names, and severities cannot drift between the
// analyzers, the tests, and the documentation (DESIGN.md's rule catalog is
// generated from the same table by `rcons_cli lint --rules`).
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"

namespace rcons::analysis {

struct RuleInfo {
  const char* id;
  const char* name;
  Severity severity;
  /// What the rule checks, and which precondition it guards.
  const char* summary;
  /// One-paragraph explanation for `rcons_cli explain <id>` (and
  /// `lint --explain=<id>`): the rule's reasoning, why a finding matters,
  /// and — for the SA bounds rules — the soundness argument in brief.
  /// Never empty (pinned by a registry test).
  const char* explain;
};

// ---- Type-spec rules (over spec::ObjectType / .type files) ----

/// Value unreachable from the declared initial value. Error when the file
/// designates an initial value (the spec is then self-contradictory);
/// note when the initial value is assumed (id 0) — searched machines such
/// as X_4 legitimately carry values only reachable when chosen as initial.
inline constexpr const char* kRuleUnreachableValue = "TS001";
/// Operation whose every transition is an identical self-loop with one
/// constant response: applying it can neither change nor observe anything.
inline constexpr const char* kRuleDeadOp = "TS002";
/// Value-preserving op whose responses alias two distinct values: it looks
/// like a Read but cannot identify the value, so it fails the structural
/// readability detector (ObjectType::op_is_read) — and readability is the
/// precondition for the paper's exact characterizations.
inline constexpr const char* kRuleAliasedResponse = "TS003";
/// Value-preserving op injective on reachable values but aliased on
/// unreachable ones: semantically a Read, yet op_is_read rejects it, so
/// the type silently drops out of the readable-exactness regime.
inline constexpr const char* kRuleShadowedRead = "TS004";
/// Declared response never produced by any transition.
inline constexpr const char* kRuleUnusedResponse = "TS005";
/// Two transition rows for the same (value, op) pair: the textual spec is
/// non-deterministic (the parser lets the last row win, silently).
inline constexpr const char* kRuleNondeterministicRow = "TS006";
/// Informational classification of each op: read / accessor / idempotent
/// mutator / mutator, plus its self-loop count.
inline constexpr const char* kRuleOpClassification = "TS007";
/// Defensive audit of the transition table: size = values x ops and every
/// next-value/response id in range (determinism + totality).
inline constexpr const char* kRuleTotalityAudit = "TS008";

// ---- Protocol rules (over exec::Protocol state machines) ----

/// Shared object never referenced by any reachable poised action.
inline constexpr const char* kRuleDeadObject = "PL001";
/// Reachable state poised on an out-of-range object or op id.
inline constexpr const char* kRuleInvalidAction = "PL002";
/// Reachable output state whose decision is not a binary-consensus value.
inline constexpr const char* kRuleInvalidDecision = "PL003";
/// No output state reachable for some (process, input) even though the
/// response-nondeterministic exploration was exhaustive: the process can
/// never decide.
inline constexpr const char* kRuleNoOutputState = "PL004";
/// The exploration hit its state bound; path-sensitive findings for the
/// affected process are best-effort (over-approximation truncated).
inline constexpr const char* kRuleStateBoundHit = "PL005";
/// A path from the initial state reaches an output state without a single
/// observable durable write: the decision exists only in volatile local
/// state, violating the persist-before-decide invariant the live runtime
/// documents (live_run.hpp) — a crash erases every trace of the decision.
inline constexpr const char* kRuleDecideBeforePersist = "PL006";
/// Two crash-recovery paths of the same (process, input) output different
/// decisions: recovery does not re-derive the pre-crash decision from
/// durable state (the exact failure mode that gives test&set recoverable
/// consensus number 1 despite consensus number 2).
inline constexpr const char* kRuleCrashDivergentDecision = "PL007";

// ---- Crash-recovery rules (shadow-persistency audit, recovery_audit) ----

/// poised()/advance() are not pure functions of the handed-in state: the
/// post-crash step function depends on hidden mutable state that is
/// neither in NVM nor in the reset local state.
inline constexpr const char* kRuleRecoveryDeterminism = "RC001";
/// A crash at an output state leads recovery to a different decision (or
/// none): the decided value is not re-derivable from shared objects alone.
inline constexpr const char* kRuleDecisionStability = "RC002";
/// Re-executing the recovery prefix after a second crash reaches a
/// different persisted NVM state: recovery mutates NVM on every retry.
inline constexpr const char* kRuleRecoveryIdempotence = "RC003";
/// A value-changing store reaches a crash point before its persist
/// barrier: it can be observed (by another process or by post-crash
/// recovery) and then silently dropped.
inline constexpr const char* kRulePersistGap = "RC004";
/// An operation response observed an unpersisted value and the resulting
/// local state flows into a later shared-object write without being
/// re-read from NVM.
inline constexpr const char* kRuleVolatileTaint = "RC005";
/// A protocol declaring an E_z crash budget (declared_crash_budget)
/// loses a decision-stability guarantee on an explored schedule within
/// that budget: the annotation overclaims.
inline constexpr const char* kRuleCrashBudget = "RC006";

// ---- Static-bounds rules (analysis/static_bounds; DESIGN.md §11) ----
// Informational: each fired SA rule contributes an edge of the sound
// [lo, hi] brackets a BoundsReport carries for the discerning and
// recording levels. None of them gate a lint run.

/// Operation that is a constant-response self-loop everywhere: removed
/// from the bounds quotient (no witness needs it; both levels preserved).
inline constexpr const char* kRuleBoundsObliviousOp = "SA001";
/// Operation whose transition rows duplicate an earlier op's: removed
/// from the bounds quotient (interchangeable inside any witness).
inline constexpr const char* kRuleBoundsDuplicateOp = "SA002";
/// Every op is value-preserving: the object never leaves its initial
/// value, so cons = rcons = 1 exactly.
inline constexpr const char* kRuleBoundsReadOnlyType = "SA003";
/// Every ordered op pair commutes in state and responses at every value:
/// not 2-discerning, so cons = 1.
inline constexpr const char* kRuleBoundsCommutativeType = "SA004";
/// Every op pair commutes or overwrites at every value: rcons = 1 and
/// cons <= 2.
inline constexpr const char* kRuleBoundsInterferenceBounded = "SA005";
/// Exact static evaluation of both conditions at n = 2 over the one-shot
/// schedules of a pair witness; decides the level-2 verdicts either way.
inline constexpr const char* kRuleBoundsPairInterference = "SA006";
/// Two ops drive some value to distinct values fixed by both ops: a
/// witness at every n, so both levels are unbounded below the cap.
inline constexpr const char* kRuleBoundsStickyPair = "SA007";
/// Two ops drive some value into disjoint absorbing regions (closure
/// generalization of SA007): a witness at every n.
inline constexpr const char* kRuleBoundsDivergentClosure = "SA008";

// ---- Cross-type order rules (analysis/order; DESIGN.md §13) ----
// Informational: each fired rule certifies one directed simulation fact
// "high >= low" (cons and rcons of high dominate low's), backed by an
// explicit map certificate that the independent checker re-validates
// before the fact is used anywhere.

/// Injective strong homomorphism of low into high: low is a sub-behavior
/// of high, so every low witness maps verbatim to a high witness.
inline constexpr const char* kRuleOrderEmbedding = "SA009";
/// Canonical forms equal and complete: the composed labelings are an
/// isomorphism; both directed facts are emitted.
inline constexpr const char* kRuleOrderIsomorphism = "SA010";
/// Embedding that exists only after SA001/SA002 level-preserving quotient
/// removals on the low side (oblivious / duplicate ops need no image).
inline constexpr const char* kRuleOrderQuotient = "SA011";
/// Surjective strong projection of high onto low (product/restriction
/// decomposition): a low witness lifts through any fiber.
inline constexpr const char* kRuleOrderProjection = "SA012";

/// All rules, in catalog order.
const std::vector<RuleInfo>& all_rules();

/// Lookup by ID; aborts on unknown IDs (programming error).
const RuleInfo& rule(const char* id);

/// Lookup by ID; nullptr on unknown IDs. This is the user-input path
/// (`explain <id>`, serve "explain") where an unknown id is a usage error,
/// not a programming error.
const RuleInfo* find_rule(const char* id);

// Catalog rendering: the single source of truth consumed by
// `rcons_cli lint --rules`, `rcons_cli explain`, the serve "explain" verb,
// and the DESIGN.md rule catalog, so the table can never drift from the
// registry (pinned by tests/analysis_test.cpp).

/// The `lint --rules` table: one "ID name severity summary" line per rule.
std::string render_rule_table();

/// The `explain <id>` block: header line, indented summary, blank line,
/// explain paragraph.
std::string render_rule_explain(const RuleInfo& info);

/// One rule as JSON:
///   {"rule":..,"name":..,"severity":..,"summary":..,"explain":..}
std::string render_rule_json(const RuleInfo& info);

/// The whole catalog as JSON: {"rules":[...]}.
std::string render_rules_json();

/// Convenience: a Diagnostic pre-filled from the registry entry for `id`
/// (severity can still be overridden by the caller afterwards).
Diagnostic make_diagnostic(const char* id, std::string subject,
                           std::string location, std::string message,
                           std::string hint);

}  // namespace rcons::analysis
