// Static analysis of protocol state machines.
//
// Each process of an exec::Protocol is a deterministic state machine over
// shared objects; the linter explores, per (process, input), the exact
// product of (shared-object values x local state) for that process running
// solo, extended with a bounded number of crash resets (volatile local
// state lost, object values and past durable writes retained — the
// paper's crash model). Solo-with-crashes is deliberately *semantic*: it
// only ever feeds advance() responses the objects can really produce, so
// protocols that RCONS_CHECK globally-impossible responses stay safe,
// while the explored graph still contains every solo and post-crash
// recovery path — which is exactly where the PLxxx rules live:
//
//   * reachability   — output states must be reachable (PL004), every
//                      object should be touched by someone (PL001), and
//                      actions/decisions must stay in range (PL002/PL003);
//   * persist-before-decide — a path that outputs a decision before any
//                      observable durable state change violates the
//                      durable-decision invariant of the live runtime
//                      (PL006);
//   * crash stability — two crash-recovery paths of the same process with
//                      the same input must not output different decisions
//                      (PL007); this statically convicts tas_racing, the
//                      protocol Golab's theorem dooms.
#pragma once

#include "analysis/diagnostic.hpp"
#include "exec/protocol.hpp"

namespace rcons::analysis {

struct ProtocolLintOptions {
  /// Crash resets allowed per explored path. One crash is always
  /// admissible in the crash-budget model once any process has taken a
  /// step; larger budgets make PL007 stricter but begin to flag protocols
  /// (e.g. T_{n,n'}) whose correctness legitimately depends on the
  /// paper's crash budgets.
  int crash_budget = 1;

  /// Bound on explored (object values x local state) nodes per
  /// (process, input). Hitting it downgrades absence claims to PL005.
  int max_states = 50000;
};

/// Runs every protocol rule against `protocol`.
Report lint_protocol(const exec::Protocol& protocol,
                     const ProtocolLintOptions& options = {});

}  // namespace rcons::analysis
