// Certified cross-type simulation search (rules SA009-SA012, DESIGN.md §13).
//
// Given two types A and B, this module searches their delta tables for
// certificate-backed relations "high >= low", meaning high simulates low
// and therefore cons(high) >= cons(low) and rcons(high) >= rcons(low):
//
//   * SA010 simulates-isomorphism — the canonical forms (reduction/
//     type_canon) are equal and complete; the composed labelings are an
//     isomorphism, emitted as two directed embedding facts.
//   * SA009 simulates-embedding — an injective strong homomorphism of low
//     into high (low is a sub-behavior of high).
//   * SA011 simulates-quotient — an embedding that exists only after
//     dropping low-side operations justified by PR 6's level-preserving
//     SA001/SA002 quotient rules (oblivious / duplicate ops).
//   * SA012 simulates-projection — a surjective strong projection of high
//     onto low (high decomposes as low x rest; drop the rest). Genuinely
//     weaker than embedding: a projection can exist when no fiber section
//     is closed under the operations.
//
// Every relation carries a SimulationCertificate that the search validated
// through the independent verify_certificate() checker before returning it
// (an unverifiable witness is a programming error and aborts). The search
// is budgeted: exceeding the node budget sets budget_exhausted and simply
// finds fewer relations — incompleteness is the only failure mode, never
// unsoundness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "analysis/order/certificate.hpp"
#include "spec/object_type.hpp"

namespace rcons::analysis::order {

/// One certified directed fact between the analyzed pair. `high` / `low`
/// are 0 for the first argument of analyze_order and 1 for the second.
struct OrderRelation {
  int high = 0;
  int low = 1;
  SimulationCertificate cert;
};

struct OrderSearchOptions {
  /// Backtracking-node budget shared by all searches of one analyze_order
  /// call. The catalog's types sit far below it; adversarially large pairs
  /// degrade to "no relation found" with budget_exhausted set.
  std::uint64_t node_budget = 200000;
};

/// The result of analyzing one (a, b) pair.
struct OrderAnalysis {
  /// Certified relations, at most one per (direction, rule): isomorphism
  /// short-circuits everything else; a direct embedding suppresses the
  /// quotient route for its direction (SA011 would be redundant).
  std::vector<OrderRelation> relations;
  /// One finding per relation, SA-rule-tagged, in canonical order.
  Report findings;
  std::uint64_t nodes_explored = 0;
  bool budget_exhausted = false;

  bool related(int high, int low) const {
    for (const OrderRelation& r : relations) {
      if (r.high == high && r.low == low) return true;
    }
    return false;
  }
};

/// Searches for certified relations between `a` and `b` in both directions.
/// Deterministic: equal inputs produce identical relations and byte-
/// identical reports. `subject_a` / `subject_b` label the findings
/// (default: the type names; the CLI passes file paths for file targets).
OrderAnalysis analyze_order(const spec::ObjectType& a,
                            const spec::ObjectType& b,
                            const OrderSearchOptions& options = {},
                            const std::string& subject_a = "",
                            const std::string& subject_b = "");

}  // namespace rcons::analysis::order
