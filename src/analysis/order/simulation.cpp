#include "analysis/order/simulation.hpp"

#include <cstddef>
#include <optional>
#include <utility>

#include "analysis/rules.hpp"
#include "reduction/type_canon.hpp"
#include "util/assert.hpp"

namespace rcons::analysis::order {

namespace {

using spec::Effect;
using spec::ObjectType;
using spec::OpId;
using spec::ResponseId;
using spec::ValueId;

// ---- shared search bookkeeping ------------------------------------------

/// Node budget shared across every search of one analyze_order call.
/// Exceeding it aborts the current search tree; the caller reports fewer
/// relations and sets budget_exhausted (incomplete, never unsound).
struct Budget {
  std::uint64_t limit = 0;
  std::uint64_t nodes = 0;
  bool exhausted = false;

  bool spend() {
    if (++nodes > limit) {
      exhausted = true;
      return false;
    }
    return true;
  }
};

int distinct_responses(const ObjectType& t, OpId o) {
  std::vector<char> seen(static_cast<std::size_t>(t.response_count()), 0);
  int count = 0;
  for (ValueId v = 0; v < t.value_count(); ++v) {
    const ResponseId r = t.apply(v, o).response;
    if (seen[static_cast<std::size_t>(r)] == 0) {
      seen[static_cast<std::size_t>(r)] = 1;
      ++count;
    }
  }
  return count;
}

/// The SA001/SA002 level-preserving quotient removals of `t`, re-deriving
/// PR 6's criteria (static_bounds): oblivious ops, then ops whose rows
/// duplicate an earlier kept op. verify_certificate() re-justifies every
/// removal independently, so agreement with static_bounds is a convenience,
/// not a soundness dependency.
std::vector<OpRemoval> quotient_removals(const ObjectType& t) {
  std::vector<OpRemoval> out;
  std::vector<char> removed(static_cast<std::size_t>(t.op_count()), 0);
  for (OpId o = 0; o < t.op_count(); ++o) {
    bool oblivious = true;
    const ResponseId fixed = t.apply(0, o).response;
    for (ValueId v = 0; v < t.value_count() && oblivious; ++v) {
      const Effect& e = t.apply(v, o);
      oblivious = e.next_value == v && e.response == fixed;
    }
    if (oblivious) {
      out.push_back({o, -1});
      removed[static_cast<std::size_t>(o)] = 1;
      continue;
    }
    for (OpId p = 0; p < o; ++p) {
      if (removed[static_cast<std::size_t>(p)] != 0) continue;
      bool same = true;
      for (ValueId v = 0; v < t.value_count() && same; ++v) {
        same = t.apply(v, o) == t.apply(v, p);
      }
      if (same) {
        out.push_back({o, p});
        removed[static_cast<std::size_t>(o)] = 1;
        break;
      }
    }
  }
  return out;
}

// ---- embedding search (SA009 / SA011) -----------------------------------

/// Backtracking search for an injective strong homomorphism of low's kept
/// ops into high. Outer recursion assigns op images (filtered: an op that
/// mutates some value needs a mutating image, and its image must produce at
/// least as many distinct responses); inner recursion assigns value images
/// in id order with a full consistency recheck per node — the tables are
/// tiny, so O(V*K) per node beats incremental bookkeeping for clarity.
class EmbeddingSearch {
 public:
  EmbeddingSearch(const ObjectType& high, const ObjectType& low,
                  const std::vector<OpRemoval>& removed, Budget& budget)
      : high_(high), low_(low), budget_(budget) {
    op_map_.assign(static_cast<std::size_t>(low.op_count()), -1);
    std::vector<char> gone(static_cast<std::size_t>(low.op_count()), 0);
    for (const OpRemoval& r : removed) {
      gone[static_cast<std::size_t>(r.op)] = 1;
    }
    for (OpId o = 0; o < low.op_count(); ++o) {
      if (gone[static_cast<std::size_t>(o)] == 0) kept_.push_back(o);
    }
    low_mutates_.reserve(kept_.size());
    low_distinct_.reserve(kept_.size());
    for (const OpId o : kept_) {
      low_mutates_.push_back(!low.op_is_value_preserving(o));
      low_distinct_.push_back(distinct_responses(low, o));
    }
    for (OpId m = 0; m < high.op_count(); ++m) {
      high_mutates_.push_back(!high.op_is_value_preserving(m));
      high_distinct_.push_back(distinct_responses(high, m));
    }
  }

  /// On success fills value_map / op_map / response_map of `cert`.
  bool run(SimulationCertificate& cert) {
    if (kept_.empty()) return false;
    value_map_.assign(static_cast<std::size_t>(low_.value_count()), -1);
    rev_value_.assign(static_cast<std::size_t>(high_.value_count()), -1);
    if (!assign_op(0)) return false;
    cert.value_map = value_map_;
    cert.op_map = op_map_;
    cert.response_map = response_map_;
    return true;
  }

 private:
  bool assign_op(std::size_t idx) {
    if (idx == kept_.size()) return assign_value(0);
    const OpId o = kept_[idx];
    for (OpId m = 0; m < high_.op_count(); ++m) {
      if (low_mutates_[idx] && !high_mutates_[static_cast<std::size_t>(m)]) {
        continue;
      }
      if (low_distinct_[idx] > high_distinct_[static_cast<std::size_t>(m)]) {
        continue;
      }
      if (!budget_.spend()) return false;
      op_map_[static_cast<std::size_t>(o)] = m;
      if (assign_op(idx + 1)) return true;
      if (budget_.exhausted) break;
    }
    op_map_[static_cast<std::size_t>(o)] = -1;
    return false;
  }

  bool assign_value(ValueId v) {
    if (v == low_.value_count()) return check_partial();
    for (ValueId h = 0; h < high_.value_count(); ++h) {
      if (rev_value_[static_cast<std::size_t>(h)] != -1) continue;
      if (!budget_.spend()) return false;
      value_map_[static_cast<std::size_t>(v)] = h;
      rev_value_[static_cast<std::size_t>(h)] = v;
      if (check_partial() && assign_value(v + 1)) return true;
      value_map_[static_cast<std::size_t>(v)] = -1;
      rev_value_[static_cast<std::size_t>(h)] = -1;
      if (budget_.exhausted) break;
    }
    return false;
  }

  /// Full consistency recheck of the current partial value assignment,
  /// rebuilding the response map from scratch. When every value is
  /// assigned this doubles as the acceptance check and leaves the final
  /// response map in response_map_.
  bool check_partial() {
    response_map_.assign(static_cast<std::size_t>(low_.response_count()), -1);
    rev_response_.assign(static_cast<std::size_t>(high_.response_count()), -1);
    for (ValueId v = 0; v < low_.value_count(); ++v) {
      const int image = value_map_[static_cast<std::size_t>(v)];
      if (image == -1) continue;
      for (std::size_t k = 0; k < kept_.size(); ++k) {
        const OpId o = kept_[k];
        const Effect& e = low_.apply(v, o);
        const Effect& eh =
            high_.apply(image, op_map_[static_cast<std::size_t>(o)]);
        const int next = value_map_[static_cast<std::size_t>(e.next_value)];
        if (next != -1) {
          if (eh.next_value != next) return false;
        } else if (rev_value_[static_cast<std::size_t>(eh.next_value)] != -1) {
          // eh.next_value is already the image of a DIFFERENT low value, so
          // e.next_value (still unassigned) can never map onto it.
          return false;
        }
        int& rho = response_map_[static_cast<std::size_t>(e.response)];
        int& rev = rev_response_[static_cast<std::size_t>(eh.response)];
        if (rho == -1) {
          if (rev != -1 && rev != e.response) return false;
          rho = eh.response;
          rev = e.response;
        } else if (rho != eh.response) {
          return false;
        }
      }
    }
    return true;
  }

  const ObjectType& high_;
  const ObjectType& low_;
  Budget& budget_;
  std::vector<OpId> kept_;
  std::vector<char> low_mutates_;
  std::vector<char> high_mutates_;
  std::vector<int> low_distinct_;
  std::vector<int> high_distinct_;
  std::vector<int> op_map_;
  std::vector<int> value_map_;
  std::vector<int> rev_value_;
  std::vector<int> response_map_;
  std::vector<int> rev_response_;
};

// ---- projection search (SA012) ------------------------------------------

/// Backtracking search for a surjective strong projection of high onto
/// low's kept ops: assigns a low image to every HIGH value. Same op-image
/// filters as the embedding search (they are implied by the projection
/// equations plus surjectivity).
class ProjectionSearch {
 public:
  ProjectionSearch(const ObjectType& high, const ObjectType& low,
                   Budget& budget)
      : high_(high), low_(low), budget_(budget) {
    op_map_.assign(static_cast<std::size_t>(low.op_count()), -1);
    for (OpId o = 0; o < low.op_count(); ++o) kept_.push_back(o);
    for (const OpId o : kept_) {
      low_mutates_.push_back(!low.op_is_value_preserving(o));
      low_distinct_.push_back(distinct_responses(low, o));
    }
    for (OpId m = 0; m < high.op_count(); ++m) {
      high_mutates_.push_back(!high.op_is_value_preserving(m));
      high_distinct_.push_back(distinct_responses(high, m));
    }
  }

  bool run(SimulationCertificate& cert) {
    if (kept_.empty() || high_.value_count() < low_.value_count()) {
      return false;
    }
    value_map_.assign(static_cast<std::size_t>(high_.value_count()), -1);
    fiber_size_.assign(static_cast<std::size_t>(low_.value_count()), 0);
    if (!assign_op(0)) return false;
    cert.value_map = value_map_;
    cert.op_map = op_map_;
    cert.response_map = response_map_;
    return true;
  }

 private:
  bool assign_op(std::size_t idx) {
    if (idx == kept_.size()) return assign_value(0);
    const OpId o = kept_[idx];
    for (OpId m = 0; m < high_.op_count(); ++m) {
      if (low_mutates_[idx] && !high_mutates_[static_cast<std::size_t>(m)]) {
        continue;
      }
      if (low_distinct_[idx] > high_distinct_[static_cast<std::size_t>(m)]) {
        continue;
      }
      if (!budget_.spend()) return false;
      op_map_[static_cast<std::size_t>(o)] = m;
      if (assign_op(idx + 1)) return true;
      if (budget_.exhausted) break;
    }
    op_map_[static_cast<std::size_t>(o)] = -1;
    return false;
  }

  bool assign_value(ValueId v) {
    if (v == high_.value_count()) {
      for (const int size : fiber_size_) {
        if (size == 0) return false;  // not surjective
      }
      return check_partial();
    }
    // Surjectivity pruning: the remaining unassigned high values must
    // still be able to hit every empty fiber.
    int empty = 0;
    for (const int size : fiber_size_) empty += size == 0 ? 1 : 0;
    if (empty > high_.value_count() - v) return false;
    for (ValueId x = 0; x < low_.value_count(); ++x) {
      if (!budget_.spend()) return false;
      value_map_[static_cast<std::size_t>(v)] = x;
      ++fiber_size_[static_cast<std::size_t>(x)];
      if (check_partial() && assign_value(v + 1)) return true;
      value_map_[static_cast<std::size_t>(v)] = -1;
      --fiber_size_[static_cast<std::size_t>(x)];
      if (budget_.exhausted) break;
    }
    return false;
  }

  bool check_partial() {
    response_map_.assign(static_cast<std::size_t>(low_.response_count()), -1);
    rev_response_.assign(static_cast<std::size_t>(high_.response_count()), -1);
    for (ValueId v = 0; v < high_.value_count(); ++v) {
      const int image = value_map_[static_cast<std::size_t>(v)];
      if (image == -1) continue;
      for (std::size_t k = 0; k < kept_.size(); ++k) {
        const OpId o = kept_[k];
        const Effect& el = low_.apply(image, o);
        const Effect& eh =
            high_.apply(v, op_map_[static_cast<std::size_t>(o)]);
        const int next = value_map_[static_cast<std::size_t>(eh.next_value)];
        if (next != -1 && next != el.next_value) return false;
        int& rho = response_map_[static_cast<std::size_t>(el.response)];
        int& rev = rev_response_[static_cast<std::size_t>(eh.response)];
        if (rho == -1) {
          if (rev != -1 && rev != el.response) return false;
          rho = eh.response;
          rev = el.response;
        } else if (rho != eh.response) {
          return false;
        }
      }
    }
    return true;
  }

  const ObjectType& high_;
  const ObjectType& low_;
  Budget& budget_;
  std::vector<OpId> kept_;
  std::vector<char> low_mutates_;
  std::vector<char> high_mutates_;
  std::vector<int> low_distinct_;
  std::vector<int> high_distinct_;
  std::vector<int> op_map_;
  std::vector<int> value_map_;
  std::vector<int> fiber_size_;
  std::vector<int> response_map_;
  std::vector<int> rev_response_;
};

// ---- isomorphism via canonical forms (SA010) ----------------------------

std::vector<int> invert_perm(const std::vector<int>& perm) {
  std::vector<int> inv(perm.size(), -1);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    inv[static_cast<std::size_t>(perm[i])] = static_cast<int>(i);
  }
  return inv;
}

/// perm_to⁻¹ ∘ perm_from: maps `from` ids to `to` ids through the shared
/// canonical labeling.
std::vector<int> compose_through_canon(const std::vector<int>& perm_from,
                                       const std::vector<int>& perm_to) {
  const std::vector<int> inv = invert_perm(perm_to);
  std::vector<int> map(perm_from.size(), -1);
  for (std::size_t i = 0; i < perm_from.size(); ++i) {
    map[i] = inv[static_cast<std::size_t>(perm_from[i])];
  }
  return map;
}

/// Builds the a->b isomorphism certificate when the canonical forms agree
/// and are complete; its inverse is derived by the caller.
std::optional<SimulationCertificate> find_isomorphism(const ObjectType& a,
                                                      const ObjectType& b) {
  const reduction::CanonicalForm ca = reduction::canonicalize_type(a);
  const reduction::CanonicalForm cb = reduction::canonicalize_type(b);
  if (!ca.complete || !cb.complete || ca.key != cb.key) return std::nullopt;
  SimulationCertificate cert;
  cert.rule = kRuleOrderIsomorphism;
  cert.kind = CertKind::kEmbedding;
  cert.value_map =
      compose_through_canon(ca.labeling.value_perm, cb.labeling.value_perm);
  cert.op_map = compose_through_canon(ca.labeling.op_perm, cb.labeling.op_perm);
  cert.response_map = compose_through_canon(ca.labeling.response_perm,
                                            cb.labeling.response_perm);
  return cert;
}

SimulationCertificate invert_isomorphism(const SimulationCertificate& cert) {
  SimulationCertificate inv;
  inv.rule = cert.rule;
  inv.kind = CertKind::kEmbedding;
  inv.value_map = invert_perm(cert.value_map);
  inv.op_map = invert_perm(cert.op_map);
  inv.response_map = invert_perm(cert.response_map);
  return inv;
}

// ---- orchestration -------------------------------------------------------

std::string relation_message(const ObjectType& high, const ObjectType& low,
                             const SimulationCertificate& cert) {
  std::string how;
  if (cert.rule == kRuleOrderIsomorphism) {
    how = "isomorphic relabeling";
  } else if (cert.kind == CertKind::kProjection) {
    how = "surjective projection onto it";
  } else if (!cert.removed.empty()) {
    how = "embedding of its SA001/SA002 quotient (" +
          std::to_string(cert.removed.size()) + " op(s) removed)";
  } else {
    how = "embedding of its full behavior";
  }
  return "simulates '" + low.name() + "' via a certified " + how +
         ": cons(" + high.name() + ") >= cons(" + low.name() + ") and rcons(" +
         high.name() + ") >= rcons(" + low.name() + ")";
}

}  // namespace

OrderAnalysis analyze_order(const ObjectType& a, const ObjectType& b,
                            const OrderSearchOptions& options,
                            const std::string& subject_a,
                            const std::string& subject_b) {
  OrderAnalysis out;
  const ObjectType* types[2] = {&a, &b};
  const std::string subjects[2] = {subject_a.empty() ? a.name() : subject_a,
                                   subject_b.empty() ? b.name() : subject_b};
  Budget budget{options.node_budget, 0, false};

  if (std::optional<SimulationCertificate> iso = find_isomorphism(a, b)) {
    out.relations.push_back({0, 1, invert_isomorphism(*iso)});
    out.relations.push_back({1, 0, *iso});
  } else {
    for (int high = 0; high < 2; ++high) {
      const int low = 1 - high;
      SimulationCertificate cert;
      EmbeddingSearch direct(*types[high], *types[low], {}, budget);
      if (direct.run(cert)) {
        cert.rule = kRuleOrderEmbedding;
        cert.kind = CertKind::kEmbedding;
        out.relations.push_back({high, low, cert});
        continue;
      }
      const std::vector<OpRemoval> removals = quotient_removals(*types[low]);
      if (!removals.empty()) {
        EmbeddingSearch quotient(*types[high], *types[low], removals, budget);
        if (quotient.run(cert)) {
          cert.rule = kRuleOrderQuotient;
          cert.kind = CertKind::kEmbedding;
          cert.removed = removals;
          out.relations.push_back({high, low, cert});
          continue;
        }
      }
      ProjectionSearch projection(*types[high], *types[low], budget);
      if (projection.run(cert)) {
        cert.rule = kRuleOrderProjection;
        cert.kind = CertKind::kProjection;
        cert.removed.clear();
        out.relations.push_back({high, low, cert});
      }
    }
  }

  // Soundness gate: every relation must survive the independent checker
  // before anyone sees it. A failure here is a search bug, not an input
  // problem, hence the hard abort.
  for (const OrderRelation& r : out.relations) {
    std::string why;
    RCONS_CHECK_MSG(
        verify_certificate(*types[r.high], *types[r.low], r.cert, &why),
        "order search emitted an invalid certificate: ", why);
    out.findings.add(make_diagnostic(
        r.cert.rule.c_str(), subjects[r.high], "vs '" + subjects[r.low] + "'",
        relation_message(*types[r.high], *types[r.low], r.cert),
        "certificate re-validated by the independent checker "
        "(analysis/order/certificate.cpp); see `rcons_cli explain " +
            r.cert.rule + "`"));
  }
  out.findings.canonicalize();
  out.nodes_explored = budget.nodes;
  out.budget_exhausted = budget.exhausted;
  return out;
}

}  // namespace rcons::analysis::order
