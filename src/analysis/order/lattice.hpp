// The implements-lattice: certified simulation facts over a set of types,
// with transitive verdict propagation (DESIGN.md §13).
//
// Nodes are types; a directed edge high -> low is one certificate-backed
// fact "high simulates low" (SA009-SA012), re-validated through the
// independent verify_certificate() checker on intake — an edge that fails
// validation is refused, so everything downstream (reachability, implied
// brackets, cache seeding) rests only on checked certificates. Facts
// compose transitively: a certified path high -> ... -> low carries
// cons(high) >= cons(low) and rcons(high) >= rcons(low) because each hop
// does.
//
// Explored per-n verdicts feed the lattice via note_verdict/note_profile,
// and flow along the closure in the sound directions only:
//
//   holds(low, n) = 1   =>  holds(high, n) = 1  for every dominator high,
//   holds(high, n) = 0  =>  holds(low, n) = 0   for every dominated low.
//
// implied() folds the propagated facts into the same analysis::LevelBracket
// the static-bounds pass produces, so the hierarchy scans consume lattice
// facts through the identical skip-plus-provenance path as `--bounds`
// (ProfileOptions::order_discerning / order_recording), and propagate()
// seeds the persistent VerdictCache with "holds=X|by=SA0xx" entries under
// the exact keys the profile scans read back.
#pragma once

#include <string>
#include <vector>

#include "analysis/order/simulation.hpp"
#include "analysis/static_bounds/static_bounds.hpp"
#include "hierarchy/consensus_number.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/object_type.hpp"

namespace rcons::analysis::order {

/// One certified direct edge: node `high` simulates node `low`.
struct LatticeEdge {
  int high = 0;
  int low = 0;
  SimulationCertificate cert;
};

class OrderLattice {
 public:
  /// Adds a node and returns its id. `name` overrides type.name() for
  /// reports (the CLI passes file paths for file targets).
  int add_type(const spec::ObjectType& type, const std::string& name = "");

  int size() const { return static_cast<int>(nodes_.size()); }
  const std::string& name(int node) const { return nodes_[node].name; }
  const spec::ObjectType& type(int node) const { return nodes_[node].type; }
  /// The node's canonical type key — also the verdict-cache spec key.
  const std::string& canon_key(int node) const { return nodes_[node].key; }

  /// Runs analyze_order over every unordered node pair and installs each
  /// certified relation. Returns the number of direct edges installed.
  /// The merged findings of all pair analyses land in `findings()`.
  int relate_all(const OrderSearchOptions& options = {});

  /// Installs one fact "high simulates low" after re-validating `cert`
  /// through the independent checker; returns false (installing nothing)
  /// when validation fails. Parallel edges between the same pair are
  /// dropped (the first certificate wins; one certified hop suffices).
  bool add_relation(int high, int low, const SimulationCertificate& cert);

  const std::vector<LatticeEdge>& edges() const { return edges_; }
  const Report& findings() const { return findings_; }
  bool budget_exhausted() const { return budget_exhausted_; }

  /// True iff a certified path high -> low exists (including high == low).
  bool dominates(int high, int low) const;

  /// Records an explored per-n verdict for `node`. `kind` is "discerning"
  /// or "recording".
  void note_verdict(int node, const char* kind, int n, bool holds);

  /// Records every per-n fact a computed profile implies up to `max_n`:
  /// holds = 1 for n in [2, level], and — when the level is exact —
  /// holds = 0 for n in (level, max_n].
  void note_profile(int node, const hierarchy::TypeProfile& profile,
                    int max_n);

  /// The bracket the noted verdicts of OTHER nodes imply for `node`
  /// through the closure (a node's own verdicts are excluded: implied()
  /// exists to prune the node's own exploration, which must not consume
  /// its own output). lo_by/hi_by carry the rule of the edge adjacent to
  /// `node` on a shortest certified path to the deciding node.
  analysis::LevelBracket implied(int node, const char* kind) const;

  /// Seeds `cache` with "holds=X|by=SA0xx" entries (lookup-then-store,
  /// like the bounds seeding) for every (node, kind, n <= max_n) the
  /// closure decides. Returns the number of entries written.
  int propagate(const reduction::VerdictCache& cache, int max_n) const;

  /// The dominance graph as JSON:
  ///   {"nodes":[{"name":..,"key_hash":".."},..],
  ///    "edges":[{"high":..,"low":..,"rule":..,"kind":..},..],
  ///    "closure_pairs":N}
  std::string dominance_json() const;

  /// The dominance graph as Graphviz dot (edges labelled by rule).
  std::string dominance_dot() const;

 private:
  struct Node {
    spec::ObjectType type;
    std::string name;
    std::string key;
    std::uint64_t key_hash = 0;
    /// noted[kind][n] for n <= noted cap: -1 unknown, 0/1 verdict.
    std::vector<int> noted_discerning;
    std::vector<int> noted_recording;
  };

  const std::vector<int>& noted(const Node& node, const char* kind) const;
  std::vector<int>& noted(Node& node, const char* kind);

  /// BFS over direct edges from `start`, following edges high -> low when
  /// `down` is true (dominated nodes) and low -> high otherwise
  /// (dominators). Returns, per node, the rule of the edge adjacent to
  /// `start` on a shortest path (empty = unreachable; "=" for start).
  std::vector<std::string> reach(int start, bool down) const;

  std::vector<Node> nodes_;
  std::vector<LatticeEdge> edges_;
  Report findings_;
  bool budget_exhausted_ = false;
};

}  // namespace rcons::analysis::order
