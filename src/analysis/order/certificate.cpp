#include "analysis/order/certificate.hpp"

#include <cstddef>

#include "analysis/diagnostic.hpp"

namespace rcons::analysis::order {

namespace {

bool reject(std::string* why, const std::string& reason) {
  if (why != nullptr) {
    if (!why->empty()) why->append("; ");
    why->append(reason);
  }
  return false;
}

bool in_range(int id, int count) { return id >= 0 && id < count; }

/// SA001 justification, re-derived: `op` is a constant-response self-loop
/// at every value of `low`.
bool is_oblivious(const spec::ObjectType& low, spec::OpId op) {
  const spec::ResponseId fixed = low.apply(0, op).response;
  for (spec::ValueId v = 0; v < low.value_count(); ++v) {
    const spec::Effect& e = low.apply(v, op);
    if (e.next_value != v || e.response != fixed) return false;
  }
  return true;
}

/// SA002 justification, re-derived: `op` and `twin` have identical
/// transition rows at every value of `low`.
bool is_duplicate(const spec::ObjectType& low, spec::OpId op,
                  spec::OpId twin) {
  for (spec::ValueId v = 0; v < low.value_count(); ++v) {
    if (!(low.apply(v, op) == low.apply(v, twin))) return false;
  }
  return true;
}

/// Validates `cert.removed` against low's delta table and fills
/// `removed_flag`. Each removal must carry a justification that holds: the
/// SA001/SA002 quotient rules preserve both levels exactly (DESIGN.md §11),
/// so a low witness restricted to kept ops is still a witness.
bool check_removals(const spec::ObjectType& low,
                    const SimulationCertificate& cert,
                    std::vector<char>& removed_flag, std::string* why) {
  removed_flag.assign(static_cast<std::size_t>(low.op_count()), 0);
  for (const OpRemoval& r : cert.removed) {
    if (!in_range(r.op, low.op_count())) {
      return reject(why, "removed op id out of range");
    }
    if (removed_flag[static_cast<std::size_t>(r.op)] != 0) {
      return reject(why, "op removed twice");
    }
    if (r.duplicate_of == -1) {
      if (!is_oblivious(low, r.op)) {
        return reject(why, "removal of '" + low.op_name(r.op) +
                               "' not justified: op is not oblivious");
      }
    } else {
      if (!in_range(r.duplicate_of, low.op_count()) ||
          r.duplicate_of == r.op) {
        return reject(why, "duplicate_of id invalid");
      }
      if (!is_duplicate(low, r.op, r.duplicate_of)) {
        return reject(why, "removal of '" + low.op_name(r.op) +
                               "' not justified: rows differ from '" +
                               low.op_name(r.duplicate_of) + "'");
      }
    }
    removed_flag[static_cast<std::size_t>(r.op)] = 1;
  }
  // A duplicate's twin must survive the quotient, or the witness rewrite
  // (replace the removed op by its twin) has nothing to point at.
  for (const OpRemoval& r : cert.removed) {
    if (r.duplicate_of >= 0 &&
        removed_flag[static_cast<std::size_t>(r.duplicate_of)] != 0) {
      return reject(why, "duplicate_of points at a removed op");
    }
  }
  return true;
}

/// Shared shape checks for op_map / response_map: kept low ops map into
/// high's op range (removed ones to -1), response entries are -1 or in
/// range and the non-(-1) entries are injective (distinct low responses
/// must stay distinct in high, or response sets that were disjoint in a
/// low witness could collide in the mapped one).
bool check_op_and_response_maps(const spec::ObjectType& high,
                                const spec::ObjectType& low,
                                const SimulationCertificate& cert,
                                const std::vector<char>& removed_flag,
                                std::string* why) {
  if (static_cast<int>(cert.op_map.size()) != low.op_count()) {
    return reject(why, "op_map size mismatch");
  }
  if (static_cast<int>(cert.response_map.size()) != low.response_count()) {
    return reject(why, "response_map size mismatch");
  }
  for (spec::OpId o = 0; o < low.op_count(); ++o) {
    const int image = cert.op_map[static_cast<std::size_t>(o)];
    if (removed_flag[static_cast<std::size_t>(o)] != 0) {
      if (image != -1) return reject(why, "removed op has an image");
    } else if (!in_range(image, high.op_count())) {
      return reject(why, "op_map image out of range for '" + low.op_name(o) +
                             "'");
    }
  }
  std::vector<char> used(static_cast<std::size_t>(high.response_count()), 0);
  for (spec::ResponseId r = 0; r < low.response_count(); ++r) {
    const int image = cert.response_map[static_cast<std::size_t>(r)];
    if (image == -1) continue;
    if (!in_range(image, high.response_count())) {
      return reject(why, "response_map image out of range");
    }
    if (used[static_cast<std::size_t>(image)] != 0) {
      return reject(why, "response_map not injective");
    }
    used[static_cast<std::size_t>(image)] = 1;
  }
  return true;
}

bool check_embedding(const spec::ObjectType& high, const spec::ObjectType& low,
                     const SimulationCertificate& cert,
                     const std::vector<char>& removed_flag, std::string* why) {
  if (static_cast<int>(cert.value_map.size()) != low.value_count()) {
    return reject(why, "value_map size mismatch");
  }
  std::vector<char> used(static_cast<std::size_t>(high.value_count()), 0);
  for (spec::ValueId v = 0; v < low.value_count(); ++v) {
    const int image = cert.value_map[static_cast<std::size_t>(v)];
    if (!in_range(image, high.value_count())) {
      return reject(why, "value_map image out of range");
    }
    if (used[static_cast<std::size_t>(image)] != 0) {
      return reject(why, "value_map not injective");
    }
    used[static_cast<std::size_t>(image)] = 1;
  }
  for (spec::ValueId v = 0; v < low.value_count(); ++v) {
    for (spec::OpId o = 0; o < low.op_count(); ++o) {
      if (removed_flag[static_cast<std::size_t>(o)] != 0) continue;
      const spec::Effect& e = low.apply(v, o);
      const int rho = cert.response_map[static_cast<std::size_t>(e.response)];
      if (rho == -1) {
        return reject(why, "produced response '" +
                               low.response_name(e.response) +
                               "' has no image");
      }
      const spec::Effect& eh =
          high.apply(cert.value_map[static_cast<std::size_t>(v)],
                     cert.op_map[static_cast<std::size_t>(o)]);
      if (eh.response != rho ||
          eh.next_value != cert.value_map[static_cast<std::size_t>(
                               e.next_value)]) {
        return reject(why, "delta not preserved at (" + low.value_name(v) +
                               ", " + low.op_name(o) + ")");
      }
    }
  }
  return true;
}

bool check_projection(const spec::ObjectType& high, const spec::ObjectType& low,
                      const SimulationCertificate& cert,
                      const std::vector<char>& removed_flag,
                      std::string* why) {
  if (static_cast<int>(cert.value_map.size()) != high.value_count()) {
    return reject(why, "value_map size mismatch");
  }
  std::vector<char> hit(static_cast<std::size_t>(low.value_count()), 0);
  for (spec::ValueId v = 0; v < high.value_count(); ++v) {
    const int image = cert.value_map[static_cast<std::size_t>(v)];
    if (!in_range(image, low.value_count())) {
      return reject(why, "value_map image out of range");
    }
    hit[static_cast<std::size_t>(image)] = 1;
  }
  for (spec::ValueId v = 0; v < low.value_count(); ++v) {
    if (hit[static_cast<std::size_t>(v)] == 0) {
      return reject(why, "value_map not surjective: '" + low.value_name(v) +
                             "' has no fiber");
    }
  }
  for (spec::ValueId v = 0; v < high.value_count(); ++v) {
    for (spec::OpId o = 0; o < low.op_count(); ++o) {
      if (removed_flag[static_cast<std::size_t>(o)] != 0) continue;
      const spec::Effect& el =
          low.apply(cert.value_map[static_cast<std::size_t>(v)], o);
      const int rho = cert.response_map[static_cast<std::size_t>(el.response)];
      if (rho == -1) {
        return reject(why, "produced response '" +
                               low.response_name(el.response) +
                               "' has no image");
      }
      const spec::Effect& eh =
          high.apply(v, cert.op_map[static_cast<std::size_t>(o)]);
      if (eh.response != rho ||
          cert.value_map[static_cast<std::size_t>(eh.next_value)] !=
              el.next_value) {
        return reject(why, "delta not preserved at (" + high.value_name(v) +
                               ", " + low.op_name(o) + ")");
      }
    }
  }
  return true;
}

}  // namespace

const char* cert_kind_name(CertKind kind) {
  return kind == CertKind::kEmbedding ? "embedding" : "projection";
}

bool verify_certificate(const spec::ObjectType& high,
                        const spec::ObjectType& low,
                        const SimulationCertificate& cert, std::string* why) {
  if (low.value_count() == 0 || high.value_count() == 0) {
    return reject(why, "empty type");
  }
  std::vector<char> removed_flag;
  if (!check_removals(low, cert, removed_flag, why)) return false;
  // At least one kept op must remain or the mapped witness has no
  // operations to assign.
  if (static_cast<int>(cert.removed.size()) >= low.op_count()) {
    return reject(why, "no kept ops remain");
  }
  if (!check_op_and_response_maps(high, low, cert, removed_flag, why)) {
    return false;
  }
  switch (cert.kind) {
    case CertKind::kEmbedding:
      return check_embedding(high, low, cert, removed_flag, why);
    case CertKind::kProjection:
      return check_projection(high, low, cert, removed_flag, why);
  }
  return reject(why, "unknown certificate kind");
}

std::string certificate_json(const SimulationCertificate& cert) {
  std::string out = "{\"rule\":\"" + json_escape(cert.rule) +
                    "\",\"kind\":\"" + cert_kind_name(cert.kind) +
                    "\",\"removed\":[";
  for (std::size_t i = 0; i < cert.removed.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"op\":" + std::to_string(cert.removed[i].op) +
           ",\"duplicate_of\":" + std::to_string(cert.removed[i].duplicate_of) +
           "}";
  }
  out += "],";
  const auto append_map = [&out](const char* label,
                                 const std::vector<int>& map) {
    out += std::string("\"") + label + "\":[";
    for (std::size_t i = 0; i < map.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(map[i]);
    }
    out += "]";
  };
  append_map("value_map", cert.value_map);
  out += ",";
  append_map("op_map", cert.op_map);
  out += ",";
  append_map("response_map", cert.response_map);
  out += "}";
  return out;
}

}  // namespace rcons::analysis::order
