// Machine-checkable certificates for cross-type simulation facts
// (DESIGN.md §13).
//
// Every ordering fact the order analysis derives — "high simulates low,
// hence cons(high) >= cons(low) and rcons(high) >= rcons(low)" — is backed
// by an explicit witness map between the two delta tables. The search
// (simulation.cpp) finds the maps; verify_certificate() here re-validates
// them from scratch against the raw spec::ObjectType tables, deliberately
// sharing no code with the search, so an unsound search bug cannot smuggle
// a wrong fact into the lattice, the verdict cache, or the profile scans.
// This is the same independence discipline PR 2 (serial vs parallel), PR 5
// (reduced vs naive), and PR 6 (brackets vs deciders) established.
//
// Two certificate kinds cover all four SA009-SA012 rules:
//
//   * kEmbedding — an injective value map iota: V_low -> V_high, an op map
//     sigma: kept Ops_low -> Ops_high (NOT required injective: witness
//     assignments may hand the same operation to several processes), and a
//     response map rho injective on the responses low actually produces,
//     with delta preservation
//         delta_high(iota(v), sigma(o)) = (rho(r), iota(v'))
//         where (r, v') = delta_low(v, o)
//     for every low value v and kept op o. Any n-discerning / n-recording
//     witness of low then maps verbatim to one of high.
//
//   * kProjection — a surjective value map pi: V_high -> V_low with
//     sigma: kept Ops_low -> Ops_high and response map rho such that for
//     every HIGH value v and kept low op o
//         pi(delta_high(v, sigma(o)).next) = delta_low(pi(v), o).next and
//         delta_high(v, sigma(o)).response = rho(delta_low(pi(v), o).resp).
//     A low witness lifts through any fiber of pi (e.g. high = low x C
//     restricted to a component: drop the extra coordinate).
//
// `removed` lists low-side operations dropped before mapping, each justified
// by PR 6's level-preserving quotient rules: SA001 (oblivious: constant-
// response self-loop everywhere) or SA002 (duplicate of an earlier kept
// op). Removals are only ever needed on the low side — a removed op needs
// no image — and the checker re-derives each justification from low's
// delta table rather than trusting the search.
#pragma once

#include <string>
#include <vector>

#include "spec/object_type.hpp"

namespace rcons::analysis::order {

/// One low-side operation dropped before mapping, with its SA001/SA002
/// justification: duplicate_of == -1 means oblivious (SA001), otherwise
/// the earlier kept op whose transition rows it duplicates (SA002).
struct OpRemoval {
  spec::OpId op = 0;
  spec::OpId duplicate_of = -1;

  friend bool operator==(const OpRemoval&, const OpRemoval&) = default;
};

enum class CertKind {
  kEmbedding,
  kProjection,
};

const char* cert_kind_name(CertKind kind);

/// The full witness for one directed fact "high >= low". `rule` is the
/// SA009-SA012 registry id that produced it (certificates are checked
/// identically regardless of rule; the id records provenance).
struct SimulationCertificate {
  std::string rule;
  CertKind kind = CertKind::kEmbedding;
  /// Low-side quotient removals applied before mapping (empty for SA009,
  /// SA010, and SA012; non-empty exactly for SA011).
  std::vector<OpRemoval> removed;
  /// kEmbedding: value_map[v_low] = v_high (injective).
  /// kProjection: value_map[v_high] = v_low (surjective).
  std::vector<int> value_map;
  /// op_map[o_low] = o_high for kept low ops; -1 for removed ones.
  std::vector<int> op_map;
  /// response_map[r_low] = r_high for responses low's kept ops produce
  /// (injective on those); -1 for responses never produced.
  std::vector<int> response_map;

  friend bool operator==(const SimulationCertificate&,
                         const SimulationCertificate&) = default;
};

/// Re-validates `cert` as a witness for "high >= low" from the two delta
/// tables alone. Shares no code with the search in simulation.cpp (see
/// file comment). On failure returns false and, when `why` is non-null,
/// appends a one-line reason. Never aborts on malformed certificates —
/// out-of-range ids are rejections, not programming errors, so corrupted
/// or adversarial certificates degrade to "fact unusable".
bool verify_certificate(const spec::ObjectType& high,
                        const spec::ObjectType& low,
                        const SimulationCertificate& cert,
                        std::string* why = nullptr);

/// JSON rendering of one certificate:
///   {"rule":"SA009","kind":"embedding","removed":[{"op":N,
///    "duplicate_of":N|-1},...],"value_map":[...],"op_map":[...],
///    "response_map":[...]}
std::string certificate_json(const SimulationCertificate& cert);

}  // namespace rcons::analysis::order
