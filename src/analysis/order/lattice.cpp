#include "analysis/order/lattice.hpp"

#include <cstdio>
#include <cstring>
#include <deque>

#include "analysis/diagnostic.hpp"
#include "reduction/type_canon.hpp"
#include "util/assert.hpp"

namespace rcons::analysis::order {

int OrderLattice::add_type(const spec::ObjectType& type,
                           const std::string& name) {
  Node node;
  node.type = type;
  node.name = name.empty() ? type.name() : name;
  const reduction::CanonicalForm canon = reduction::canonicalize_type(type);
  node.key = canon.key;
  node.key_hash = canon.hash;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int OrderLattice::relate_all(const OrderSearchOptions& options) {
  int installed = 0;
  for (int i = 0; i < size(); ++i) {
    for (int j = i + 1; j < size(); ++j) {
      const OrderAnalysis analysis =
          analyze_order(nodes_[i].type, nodes_[j].type, options,
                        nodes_[i].name, nodes_[j].name);
      budget_exhausted_ = budget_exhausted_ || analysis.budget_exhausted;
      for (const OrderRelation& r : analysis.relations) {
        const int high = r.high == 0 ? i : j;
        const int low = r.low == 0 ? i : j;
        if (add_relation(high, low, r.cert)) ++installed;
      }
      findings_.merge(analysis.findings);
    }
  }
  findings_.canonicalize();
  return installed;
}

bool OrderLattice::add_relation(int high, int low,
                                const SimulationCertificate& cert) {
  RCONS_CHECK(high >= 0 && high < size() && low >= 0 && low < size() &&
              high != low);
  for (const LatticeEdge& e : edges_) {
    if (e.high == high && e.low == low) return false;  // one hop suffices
  }
  // Independence gate: only checker-validated certificates become edges,
  // regardless of where the caller got them.
  if (!verify_certificate(nodes_[high].type, nodes_[low].type, cert)) {
    return false;
  }
  edges_.push_back({high, low, cert});
  return true;
}

std::vector<std::string> OrderLattice::reach(int start, bool down) const {
  std::vector<std::string> tag(static_cast<std::size_t>(size()));
  tag[static_cast<std::size_t>(start)] = "=";
  std::deque<int> queue{start};
  while (!queue.empty()) {
    const int current = queue.front();
    queue.pop_front();
    for (const LatticeEdge& e : edges_) {
      const int from = down ? e.high : e.low;
      const int to = down ? e.low : e.high;
      if (from != current || !tag[static_cast<std::size_t>(to)].empty()) {
        continue;
      }
      // The tag records the rule of the edge adjacent to `start` on the
      // BFS shortest path — the provenance a seeded verdict reports.
      tag[static_cast<std::size_t>(to)] =
          current == start ? e.cert.rule
                           : tag[static_cast<std::size_t>(current)];
      queue.push_back(to);
    }
  }
  tag[static_cast<std::size_t>(start)].clear();  // exclude self
  return tag;
}

bool OrderLattice::dominates(int high, int low) const {
  if (high == low) return true;
  return !reach(high, true)[static_cast<std::size_t>(low)].empty();
}

const std::vector<int>& OrderLattice::noted(const Node& node,
                                            const char* kind) const {
  return std::strcmp(kind, "recording") == 0 ? node.noted_recording
                                             : node.noted_discerning;
}

std::vector<int>& OrderLattice::noted(Node& node, const char* kind) {
  return std::strcmp(kind, "recording") == 0 ? node.noted_recording
                                             : node.noted_discerning;
}

void OrderLattice::note_verdict(int node, const char* kind, int n,
                                bool holds) {
  RCONS_CHECK(node >= 0 && node < size() && n >= 2);
  std::vector<int>& verdicts = noted(nodes_[static_cast<std::size_t>(node)],
                                     kind);
  if (static_cast<int>(verdicts.size()) <= n) {
    verdicts.resize(static_cast<std::size_t>(n) + 1, -1);
  }
  verdicts[static_cast<std::size_t>(n)] = holds ? 1 : 0;
}

void OrderLattice::note_profile(int node,
                                const hierarchy::TypeProfile& profile,
                                int max_n) {
  const auto note_level = [&](const char* kind,
                              const hierarchy::Level& level) {
    for (int n = 2; n <= level.value && n <= max_n; ++n) {
      note_verdict(node, kind, n, true);
    }
    if (level.exact) {
      for (int n = level.value + 1; n <= max_n; ++n) {
        note_verdict(node, kind, n, false);
      }
    }
  };
  note_level("discerning", profile.discerning);
  note_level("recording", profile.recording);
}

analysis::LevelBracket OrderLattice::implied(int node,
                                             const char* kind) const {
  analysis::LevelBracket bracket;
  // holds = 1 flows upward from dominated nodes; holds = 0 flows downward
  // from dominators. Monotonicity (a witness at n restricts to any m < n)
  // makes the max-1 / min-0 fold sound.
  const std::vector<std::string> below = reach(node, true);
  const std::vector<std::string> above = reach(node, false);
  for (int other = 0; other < size(); ++other) {
    const Node& source = nodes_[static_cast<std::size_t>(other)];
    const std::vector<int>& verdicts = noted(source, kind);
    if (!below[static_cast<std::size_t>(other)].empty()) {
      for (int n = static_cast<int>(verdicts.size()) - 1; n >= 2; --n) {
        if (verdicts[static_cast<std::size_t>(n)] == 1 && n > bracket.lo) {
          bracket.lo = n;
          bracket.lo_by = below[static_cast<std::size_t>(other)];
          break;
        }
      }
    }
    if (!above[static_cast<std::size_t>(other)].empty()) {
      for (int n = 2; n < static_cast<int>(verdicts.size()); ++n) {
        if (verdicts[static_cast<std::size_t>(n)] == 0 &&
            n - 1 < bracket.hi) {
          bracket.hi = n - 1;
          bracket.hi_by = above[static_cast<std::size_t>(other)];
          break;
        }
      }
    }
  }
  // lo > hi would mean a certified chain contradicts an explored verdict —
  // unsoundness somewhere. The golden-corpus consistency test exists to
  // keep this check untrippable.
  RCONS_CHECK(bracket.lo <= bracket.hi);
  return bracket;
}

int OrderLattice::propagate(const reduction::VerdictCache& cache,
                            int max_n) const {
  if (!cache.enabled()) return 0;
  int written = 0;
  for (int node = 0; node < size(); ++node) {
    for (const char* kind : {"discerning", "recording"}) {
      const analysis::LevelBracket bracket = implied(node, kind);
      for (int n = 2; n <= max_n; ++n) {
        if (!bracket.decides(n)) continue;
        const std::string key =
            hierarchy::verdict_cache_key(kind, n, canon_key(node));
        if (cache.lookup(key).has_value()) continue;  // lookup-then-store
        cache.store(key,
                    std::string(bracket.verdict(n) ? "holds=1" : "holds=0") +
                        "|by=" + bracket.decided_by(n));
        ++written;
      }
    }
  }
  return written;
}

std::string OrderLattice::dominance_json() const {
  std::string out = "{\"nodes\":[";
  for (int i = 0; i < size(); ++i) {
    if (i > 0) out += ",";
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(
                      nodes_[static_cast<std::size_t>(i)].key_hash));
    out += "{\"name\":\"" + json_escape(name(i)) + "\",\"key_hash\":\"" +
           hash + "\"}";
  }
  out += "],\"edges\":[";
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"high\":" + std::to_string(edges_[i].high) +
           ",\"low\":" + std::to_string(edges_[i].low) + ",\"rule\":\"" +
           edges_[i].cert.rule + "\",\"kind\":\"" +
           cert_kind_name(edges_[i].cert.kind) + "\"}";
  }
  int closure = 0;
  for (int i = 0; i < size(); ++i) {
    const std::vector<std::string> below = reach(i, true);
    for (int j = 0; j < size(); ++j) {
      if (!below[static_cast<std::size_t>(j)].empty()) ++closure;
    }
  }
  out += "],\"closure_pairs\":" + std::to_string(closure) + "}";
  return out;
}

std::string OrderLattice::dominance_dot() const {
  std::string out = "digraph order {\n  rankdir=BT;\n";
  for (int i = 0; i < size(); ++i) {
    out += "  \"" + name(i) + "\";\n";
  }
  for (const LatticeEdge& e : edges_) {
    out += "  \"" + name(e.high) + "\" -> \"" + name(e.low) +
           "\" [label=\"" + e.cert.rule + "\"];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace rcons::analysis::order
