#include "analysis/rules.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace rcons::analysis {

const std::vector<RuleInfo>& all_rules() {
  static const auto* kRules = new std::vector<RuleInfo>{
      {kRuleUnreachableValue, "unreachable-value", Severity::kError,
       "value unreachable from the designated initial value; the machine "
       "can never enter it, so its rows are dead spec (error only when the "
       "file designates `initial`; note when the initial value is assumed)"},
      {kRuleDeadOp, "dead-op", Severity::kError,
       "op is a constant-response self-loop everywhere: it cannot change "
       "or observe the value, so it adds schedules without adding power"},
      {kRuleAliasedResponse, "aliased-response", Severity::kError,
       "value-preserving op whose responses alias distinct values; it "
       "cannot serve as the Read the paper's readable-type "
       "characterizations (n-discerning / n-recording exactness) require"},
      {kRuleShadowedRead, "shadowed-read", Severity::kWarning,
       "op is a Read on every reachable value but aliased on unreachable "
       "ones, so ObjectType::op_is_read rejects it and the type silently "
       "loses its readability-based exactness guarantees"},
      {kRuleUnusedResponse, "unused-response", Severity::kWarning,
       "declared response never produced by any transition"},
      {kRuleNondeterministicRow, "nondeterministic-row", Severity::kError,
       "transition row redefines an earlier (value, op) row; the textual "
       "spec is non-deterministic and the parser silently keeps the last "
       "row, violating the model's determinism assumption"},
      {kRuleOpClassification, "op-classification", Severity::kNote,
       "informational: classifies each op as read / accessor / idempotent "
       "/ mutator with its self-loop count"},
      {kRuleTotalityAudit, "totality-audit", Severity::kError,
       "transition table is not a total deterministic function "
       "values x ops -> (response, value)"},
      {kRuleDeadObject, "dead-object", Severity::kWarning,
       "shared object never used by any reachable poised action"},
      {kRuleInvalidAction, "invalid-action", Severity::kError,
       "reachable state poised on an out-of-range object or op id; the "
       "execution engine would abort"},
      {kRuleInvalidDecision, "invalid-decision", Severity::kError,
       "reachable output state decides a non-binary value; binary "
       "consensus validity cannot hold"},
      {kRuleNoOutputState, "no-output-state", Severity::kError,
       "no output state reachable for some (process, input): the process "
       "can never decide, so (recoverable) wait-freedom fails"},
      {kRuleStateBoundHit, "state-bound-hit", Severity::kNote,
       "informational: response-nondeterministic exploration truncated at "
       "the state bound; path findings are best-effort"},
      {kRuleDecideBeforePersist, "decide-before-persist", Severity::kWarning,
       "some path decides without any observable durable write, so a crash "
       "at the output state erases every trace of the decision "
       "(persist-before-decide invariant of the live runtime)"},
      {kRuleCrashDivergentDecision, "crash-divergent-decision",
       Severity::kWarning,
       "crash-recovery paths of one (process, input) output different "
       "decisions; recovery fails to re-derive the decision from durable "
       "state"},
  };
  return *kRules;
}

const RuleInfo& rule(const char* id) {
  for (const RuleInfo& r : all_rules()) {
    if (std::strcmp(r.id, id) == 0) return r;
  }
  RCONS_CHECK(false && "unknown lint rule id");
  return all_rules().front();  // unreachable
}

Diagnostic make_diagnostic(const char* id, std::string subject,
                           std::string location, std::string message,
                           std::string hint) {
  const RuleInfo& info = rule(id);
  Diagnostic d;
  d.rule = info.id;
  d.rule_name = info.name;
  d.severity = info.severity;
  d.subject = std::move(subject);
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

}  // namespace rcons::analysis
