#include "analysis/rules.hpp"

#include <cstring>

#include "util/assert.hpp"

namespace rcons::analysis {

const std::vector<RuleInfo>& all_rules() {
  static const auto* kRules = new std::vector<RuleInfo>{
      {kRuleUnreachableValue, "unreachable-value", Severity::kError,
       "value unreachable from the designated initial value; the machine "
       "can never enter it, so its rows are dead spec (error only when the "
       "file designates `initial`; note when the initial value is assumed)"},
      {kRuleDeadOp, "dead-op", Severity::kError,
       "op is a constant-response self-loop everywhere: it cannot change "
       "or observe the value, so it adds schedules without adding power"},
      {kRuleAliasedResponse, "aliased-response", Severity::kError,
       "value-preserving op whose responses alias distinct values; it "
       "cannot serve as the Read the paper's readable-type "
       "characterizations (n-discerning / n-recording exactness) require"},
      {kRuleShadowedRead, "shadowed-read", Severity::kWarning,
       "op is a Read on every reachable value but aliased on unreachable "
       "ones, so ObjectType::op_is_read rejects it and the type silently "
       "loses its readability-based exactness guarantees"},
      {kRuleUnusedResponse, "unused-response", Severity::kWarning,
       "declared response never produced by any transition"},
      {kRuleNondeterministicRow, "nondeterministic-row", Severity::kError,
       "transition row redefines an earlier (value, op) row; the textual "
       "spec is non-deterministic and the parser silently keeps the last "
       "row, violating the model's determinism assumption"},
      {kRuleOpClassification, "op-classification", Severity::kNote,
       "informational: classifies each op as read / accessor / idempotent "
       "/ mutator with its self-loop count"},
      {kRuleTotalityAudit, "totality-audit", Severity::kError,
       "transition table is not a total deterministic function "
       "values x ops -> (response, value)"},
      {kRuleDeadObject, "dead-object", Severity::kWarning,
       "shared object never used by any reachable poised action"},
      {kRuleInvalidAction, "invalid-action", Severity::kError,
       "reachable state poised on an out-of-range object or op id; the "
       "execution engine would abort"},
      {kRuleInvalidDecision, "invalid-decision", Severity::kError,
       "reachable output state decides a non-binary value; binary "
       "consensus validity cannot hold"},
      {kRuleNoOutputState, "no-output-state", Severity::kError,
       "no output state reachable for some (process, input): the process "
       "can never decide, so (recoverable) wait-freedom fails"},
      {kRuleStateBoundHit, "state-bound-hit", Severity::kNote,
       "informational: response-nondeterministic exploration truncated at "
       "the state bound; path findings are best-effort"},
      {kRuleDecideBeforePersist, "decide-before-persist", Severity::kWarning,
       "some path decides without any observable durable write, so a crash "
       "at the output state erases every trace of the decision "
       "(persist-before-decide invariant of the live runtime)"},
      {kRuleCrashDivergentDecision, "crash-divergent-decision",
       Severity::kWarning,
       "crash-recovery paths of one (process, input) output different "
       "decisions; recovery fails to re-derive the decision from durable "
       "state"},
      {kRuleRecoveryDeterminism, "recovery-determinism", Severity::kError,
       "poised()/advance() are not pure functions of the handed-in state; "
       "the post-crash step function depends on hidden state that is "
       "neither in NVM nor in the reset local state, so no replay-based "
       "guarantee can hold"},
      {kRuleDecisionStability, "decision-stability", Severity::kWarning,
       "a crash at an output state leads recovery to a different decision "
       "or to none: the decided value is not re-derivable from shared "
       "objects alone (the failure mode that costs test&set its "
       "recoverable consensus power)"},
      {kRuleRecoveryIdempotence, "recovery-idempotence", Severity::kWarning,
       "re-executing the recovery prefix after a second crash reaches a "
       "different persisted NVM state; recovery mutates NVM on every "
       "retry instead of being idempotent"},
      {kRulePersistGap, "persist-gap", Severity::kError,
       "a value-changing store reaches a crash point before its persist "
       "barrier, so it can be observed by another process or by post-crash "
       "recovery and then silently dropped (reproducible at runtime under "
       "RCONS_PMEM_STRICT)"},
      {kRuleVolatileTaint, "volatile-taint", Severity::kError,
       "an operation response observed an unpersisted value and the "
       "resulting local state flows into a later shared-object write "
       "without being re-read from NVM (subsumes RC004 for the same run)"},
      {kRuleCrashBudget, "crash-budget", Severity::kError,
       "a protocol declaring an E_z crash budget loses decision stability "
       "on an explored schedule within that budget; the annotation "
       "overclaims (audited in the solo E_z projection, see "
       "sched::CrashAccountant)"},
  };
  return *kRules;
}

const RuleInfo& rule(const char* id) {
  for (const RuleInfo& r : all_rules()) {
    if (std::strcmp(r.id, id) == 0) return r;
  }
  RCONS_CHECK(false && "unknown lint rule id");
  return all_rules().front();  // unreachable
}

Diagnostic make_diagnostic(const char* id, std::string subject,
                           std::string location, std::string message,
                           std::string hint) {
  const RuleInfo& info = rule(id);
  Diagnostic d;
  d.rule = info.id;
  d.rule_name = info.name;
  d.severity = info.severity;
  d.subject = std::move(subject);
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

}  // namespace rcons::analysis
