#include "analysis/rules.hpp"

#include <cstdio>
#include <cstring>

#include "util/assert.hpp"

namespace rcons::analysis {

const std::vector<RuleInfo>& all_rules() {
  static const auto* kRules = new std::vector<RuleInfo>{
      {kRuleUnreachableValue, "unreachable-value", Severity::kError,
       "value unreachable from the designated initial value; the machine "
       "can never enter it, so its rows are dead spec (error only when the "
       "file designates `initial`; note when the initial value is assumed)",
       "A .type file that designates an initial value promises that the "
       "machine starts there, so a value no operation sequence can reach "
       "is dead specification: its transition rows can never execute, and "
       "their presence usually signals a typo in some row's next-value. "
       "When no `initial` line is present the initial value is assumed and "
       "the finding is only a note, because searched machines (such as the "
       "X_n family) legitimately carry values that are reachable only when "
       "chosen as the initial value of a witness assignment."},
      {kRuleDeadOp, "dead-op", Severity::kError,
       "op is a constant-response self-loop everywhere: it cannot change "
       "or observe the value, so it adds schedules without adding power",
       "An operation whose every transition is a self-loop returning one "
       "fixed response can neither change the object nor learn anything "
       "about it. Invoking it is indistinguishable from doing nothing, so "
       "it cannot contribute to any consensus protocol; it only inflates "
       "the schedule space every exact scan must cover. Either the row "
       "table has a typo or the op should be deleted. (The bounds engine "
       "reports the same structure as SA001 and removes such ops from its "
       "quotient automatically.)"},
      {kRuleAliasedResponse, "aliased-response", Severity::kError,
       "value-preserving op whose responses alias distinct values; it "
       "cannot serve as the Read the paper's readable-type "
       "characterizations (n-discerning / n-recording exactness) require",
       "The paper's exact characterizations (consensus number = maximal "
       "discerning level, recoverable consensus number = maximal recording "
       "level) hold for readable types, and readability is detected "
       "structurally: some op must preserve the value and return a "
       "response that identifies it uniquely. A value-preserving op whose "
       "responses alias two distinct values looks like a Read but cannot "
       "identify the value, so the type silently drops to the "
       "upper-bound-only regime. Split the aliased responses if the op was "
       "meant to be the Read."},
      {kRuleShadowedRead, "shadowed-read", Severity::kWarning,
       "op is a Read on every reachable value but aliased on unreachable "
       "ones, so ObjectType::op_is_read rejects it and the type silently "
       "loses its readability-based exactness guarantees",
       "Readability detection (ObjectType::op_is_read) demands response "
       "injectivity on ALL values, because witness assignments may start "
       "from any value. An op that is a perfect Read on the reachable "
       "fragment but aliases two unreachable values therefore fails the "
       "detector, and every downstream consumer treats the computed levels "
       "as upper bounds instead of exact numbers. Either fix the aliased "
       "rows or delete the unreachable values."},
      {kRuleUnusedResponse, "unused-response", Severity::kWarning,
       "declared response never produced by any transition",
       "A declared response no transition ever returns is harmless to the "
       "semantics but usually indicates an incomplete edit: a row was "
       "changed to return something else and the old response lingered. "
       "It also pads the response alphabet that witness enumeration and "
       "canonicalization iterate over. Delete the declaration or wire the "
       "response into the row that was supposed to produce it."},
      {kRuleNondeterministicRow, "nondeterministic-row", Severity::kError,
       "transition row redefines an earlier (value, op) row; the textual "
       "spec is non-deterministic and the parser silently keeps the last "
       "row, violating the model's determinism assumption",
       "The model restricts attention to deterministic types: one row per "
       "(value, op) pair. When a file repeats a pair, the parser keeps the "
       "last row and drops the first, so the file reads as "
       "non-deterministic to a human while the tool checks only one of "
       "the two behaviors. Every theorem downstream assumes determinism, "
       "so the duplicate must be resolved by hand, not by parser order."},
      {kRuleOpClassification, "op-classification", Severity::kNote,
       "informational: classifies each op as read / accessor / idempotent "
       "/ mutator with its self-loop count",
       "A purely informational census of the operation alphabet: for each "
       "op, whether it is a Read (value-preserving, response identifies "
       "the value), an accessor (value-preserving but not a Read), an "
       "idempotent mutator (applying it twice equals applying it once), "
       "or a general mutator, plus how many of its transitions are "
       "self-loops. Useful for eyeballing whether a hand-written type has "
       "the structure its author intended."},
      {kRuleTotalityAudit, "totality-audit", Severity::kError,
       "transition table is not a total deterministic function "
       "values x ops -> (response, value)",
       "Defense-in-depth audit of an already-built ObjectType: the "
       "transition table must have exactly values x ops entries and every "
       "next-value and response id must be in range. The builder and "
       "parser enforce this on construction, so a firing means memory "
       "corruption or a code path that bypassed validation; the finding "
       "names the offending (value, op) cell."},
      {kRuleDeadObject, "dead-object", Severity::kWarning,
       "shared object never used by any reachable poised action",
       "The protocol declares a shared object that no reachable state is "
       "ever poised on. It cannot influence any execution, so either the "
       "protocol was simplified and the declaration lingered, or a state "
       "machine bug routes around the accesses the author intended. "
       "Remove the object or fix the states that should use it."},
      {kRuleInvalidAction, "invalid-action", Severity::kError,
       "reachable state poised on an out-of-range object or op id; the "
       "execution engine would abort",
       "Some reachable protocol state is poised on an object index or an "
       "operation id that does not exist. The exhaustive executors "
       "validate actions before applying them and would abort the run, so "
       "this lint finding is the friendly version of a crash: it names "
       "the state and the offending action so the state machine can be "
       "fixed before any model checking is attempted."},
      {kRuleInvalidDecision, "invalid-decision", Severity::kError,
       "reachable output state decides a non-binary value; binary "
       "consensus validity cannot hold",
       "The safety checker verifies binary consensus: agreement and "
       "validity over inputs {0, 1}. An output state that decides any "
       "other value makes validity unsatisfiable, and usually indicates "
       "an uninitialized decision field or a state-machine transition "
       "into the wrong output state. The finding names the process, "
       "input, and state so the decision wiring can be repaired."},
      {kRuleNoOutputState, "no-output-state", Severity::kError,
       "no output state reachable for some (process, input): the process "
       "can never decide, so (recoverable) wait-freedom fails",
       "For some process and input, the response-nondeterministic "
       "over-approximation of the protocol's reachable states contains no "
       "output state even though the exploration was exhaustive. The "
       "process can never decide regardless of scheduling, so recoverable "
       "wait-freedom is violated before any model checking begins. This "
       "usually means a missing transition arm or an advance() that loops "
       "on an unexpected response."},
      {kRuleStateBoundHit, "state-bound-hit", Severity::kNote,
       "informational: response-nondeterministic exploration truncated at "
       "the state bound; path findings are best-effort",
       "The protocol lint explores the state machine with responses "
       "treated as nondeterministic, which over-approximates every real "
       "execution. When that exploration hits its state bound it stops "
       "early, so path-sensitive findings (dead objects, unreachable "
       "output states) for the affected process become best-effort: a "
       "clean report no longer proves absence. Raise the bound via "
       "--max-states to restore exhaustiveness."},
      {kRuleDecideBeforePersist, "decide-before-persist", Severity::kWarning,
       "some path decides without any observable durable write, so a crash "
       "at the output state erases every trace of the decision "
       "(persist-before-decide invariant of the live runtime)",
       "The live runtime documents the persist-before-decide discipline: "
       "a process must make its decision re-derivable from durable state "
       "before announcing it. A path that reaches an output state without "
       "one observable durable write keeps the decision only in volatile "
       "local state, so an individual crash at the output erases every "
       "trace of it and recovery may decide differently — exactly the "
       "divergence RC002 then observes dynamically."},
      {kRuleCrashDivergentDecision, "crash-divergent-decision",
       Severity::kWarning,
       "crash-recovery paths of one (process, input) output different "
       "decisions; recovery fails to re-derive the decision from durable "
       "state",
       "Two crash-recovery paths of the same (process, input) pair reach "
       "output states that decide differently. Recovery therefore does "
       "not re-derive the pre-crash decision from durable shared state — "
       "the exact failure mode that gives test&set recoverable consensus "
       "number 1 despite consensus number 2. The finding is path-based "
       "(static over-approximation); the RC002 audit reproduces it on "
       "concrete schedules."},
      {kRuleRecoveryDeterminism, "recovery-determinism", Severity::kError,
       "poised()/advance() are not pure functions of the handed-in state; "
       "the post-crash step function depends on hidden state that is "
       "neither in NVM nor in the reset local state, so no replay-based "
       "guarantee can hold",
       "The crash-recovery audit re-evaluates poised() and advance() on "
       "identical (local state, NVM) snapshots and demands identical "
       "results. A mismatch means the protocol consults hidden mutable "
       "state — a call counter, global, or RNG — that survives neither in "
       "NVM nor in the reset local state, so the post-crash step function "
       "is not a function of what recovery actually has. Every replay- or "
       "idempotence-based guarantee (RC002, RC003) is meaningless until "
       "this is fixed."},
      {kRuleDecisionStability, "decision-stability", Severity::kWarning,
       "a crash at an output state leads recovery to a different decision "
       "or to none: the decided value is not re-derivable from shared "
       "objects alone (the failure mode that costs test&set its "
       "recoverable consensus power)",
       "The audit crashes a process exactly at an output state, runs its "
       "recovery solo, and compares decisions. A divergence (or a "
       "recovery that never decides) shows the decided value is not "
       "re-derivable from durable shared objects: the paper's model lets "
       "a crash erase local state, so whatever the process knew only "
       "locally is gone. This is the dynamic, schedule-concrete "
       "counterpart of PL007 and the mechanism behind recoverable "
       "consensus numbers dropping below consensus numbers."},
      {kRuleRecoveryIdempotence, "recovery-idempotence", Severity::kWarning,
       "re-executing the recovery prefix after a second crash reaches a "
       "different persisted NVM state; recovery mutates NVM on every "
       "retry instead of being idempotent",
       "Crashes can repeat: a process may crash again while recovering. "
       "The audit re-runs a recovery prefix after a second crash and "
       "compares the persisted NVM state against the first attempt; a "
       "difference means recovery mutates NVM non-idempotently, so each "
       "retry compounds the damage and guarantees established for "
       "single-crash schedules need not survive E_z budgets with z > 1. "
       "Recovery code should write NVM only via idempotent "
       "read-check-write patterns."},
      {kRulePersistGap, "persist-gap", Severity::kError,
       "a value-changing store reaches a crash point before its persist "
       "barrier, so it can be observed by another process or by post-crash "
       "recovery and then silently dropped (reproducible at runtime under "
       "RCONS_PMEM_STRICT)",
       "Between a value-changing store to a shared object and its persist "
       "barrier there is a crash point: another process (or the crashed "
       "process's own recovery) can observe the new value, after which "
       "the crash drops the store from NVM — the observed value never "
       "happened. The shadow-persistency audit flags the store and the "
       "observation; setting RCONS_PMEM_STRICT=ON makes the live runtime "
       "reproduce the same drop, so the lint finding and a runtime "
       "failure point at one root cause."},
      {kRuleVolatileTaint, "volatile-taint", Severity::kError,
       "an operation response observed an unpersisted value and the "
       "resulting local state flows into a later shared-object write "
       "without being re-read from NVM (subsumes RC004 for the same run)",
       "Tracks taint: an operation response that observed an unpersisted "
       "value marks the observing process's local state, and the audit "
       "fires when that taint flows into a later shared-object write "
       "without an intervening re-read from NVM. The write launders a "
       "value that a crash may retroactively erase into durable state, "
       "corrupting objects other processes trust. Re-reading from NVM "
       "after the persist barrier (or persisting before exposing) breaks "
       "the flow; RC004 findings on the same run are the root cause."},
      {kRuleCrashBudget, "crash-budget", Severity::kError,
       "a protocol declaring an E_z crash budget loses decision stability "
       "on an explored schedule within that budget; the annotation "
       "overclaims (audited in the solo E_z projection, see "
       "sched::CrashAccountant)",
       "Protocols may declare an E_z crash budget: a claim that decisions "
       "stay stable as long as each process crashes at most z times. The "
       "audit explores schedules within the declared budget (solo E_z "
       "projection) and fires when decision stability fails inside it — "
       "the annotation overclaims, which matters because budget "
       "declarations feed the paper's budget-indexed hierarchy results. "
       "Either lower z or fix the recovery path that loses the decision."},
      {kRuleBoundsObliviousOp, "oblivious-op", Severity::kNote,
       "bounds quotient: constant-response self-loop op removed; no "
       "discerning or recording witness needs it (levels preserved "
       "exactly)",
       "Bounds-engine counterpart of TS002: an op whose every transition "
       "is a self-loop with one constant response can neither change nor "
       "observe the value. Soundness of removing it: in any would-be "
       "witness that assigns it to process p, every schedule containing p "
       "yields the same final value as the schedule with p moved to the "
       "front (the op is a state no-op) and the same constant response, "
       "so p's (response, value) pair appears under both leading teams "
       "and the R-sets collide; recording U-sets are untouched by state "
       "no-ops. Hence neither condition's verdict changes when the op is "
       "dropped, and the exact deciders run on the smaller quotient."},
      {kRuleBoundsDuplicateOp, "duplicate-op", Severity::kNote,
       "bounds quotient: op with transition rows identical to an earlier "
       "op removed; interchangeable inside any witness (levels preserved "
       "exactly)",
       "Two ops with identical transition rows are observationally equal: "
       "substituting one for the other in any assignment changes no "
       "schedule's values or responses, so every witness using the "
       "duplicate maps to a witness using the original and vice versa. "
       "Both levels are therefore preserved exactly when the duplicate is "
       "dropped, and the exact deciders enumerate assignments over a "
       "strictly smaller op alphabet."},
      {kRuleBoundsReadOnlyType, "read-only-type", Severity::kNote,
       "bounds: every op is value-preserving, so cons = rcons = 1 exactly",
       "If every operation preserves every value, the object sits at its "
       "initial value u forever. Recording: U0 = U1 = {u}, never "
       "disjoint. Discerning: each process p's response is the fixed "
       "r_p(u), and the pair (r_p(u), u) is recorded both in a schedule "
       "led by p's own team and in one led by the other team (prepend any "
       "opposing process), so R-sets collide for every assignment. "
       "Neither condition holds at any n >= 2, pinning both levels to 1 "
       "exactly — information that cannot leave the object cannot "
       "coordinate processes."},
      {kRuleBoundsCommutativeType, "commutative-type", Severity::kNote,
       "bounds: every ordered op pair fully commutes (state and "
       "responses), so the type is not 2-discerning and cons = 1",
       "Full commutation means that for every value v and ops a, b, "
       "applying ab or ba from v reaches the same value and gives each op "
       "the same response either way (for a pair (a, a) this requires a's "
       "response to be stable across its own application — test&set fails "
       "exactly here). Take any assignment at any n and processes p_i, "
       "p_j on opposite teams: the schedules (p_i p_j) and (p_j p_i) "
       "record identical (response, value) pairs for p_i under both "
       "leading teams, so the R-sets collide and no n >= 2 is discerning: "
       "cons = 1. This is the classical Herlihy commute argument, "
       "evaluated statically on the delta table."},
      {kRuleBoundsInterferenceBounded, "interference-bounded",
       Severity::kNote,
       "bounds: every op pair commutes or overwrites at every value, so "
       "rcons = 1 and cons <= 2",
       "Commute-or-overwrite at value v means delta(v,ab) = delta(v,ba), "
       "or delta(v,ab) = delta(v,b) (b overwrites a), or symmetrically a "
       "overwrites b. Recording: for cross-team p_i (op a) and p_j (op "
       "b), the commute case puts the common value of (p_i p_j) and "
       "(p_j p_i) in both U-sets, and the overwrite case equates the "
       "value of (p_i p_j) with that of (p_j) alone — again one value in "
       "both U-sets. This works at every n, so rcons = 1. Discerning at "
       "n >= 3: whatever state a third process p_k steps on after "
       "(p_i p_j ...) is reproduced by a schedule led by the opposite "
       "team — (p_j p_i p_k) under commute, (p_j p_k) under overwrite — "
       "so p_k's (response, value) pair collides across teams and no "
       "n >= 3 is discerning: cons <= 2. Registers and test&set land "
       "here, which is why their recoverable consensus number is 1."},
      {kRuleBoundsPairInterference, "pair-interference", Severity::kNote,
       "bounds: exact static decision of both conditions at n = 2 (finds "
       "a 2-discerning / 2-recording pair witness or proves none exists)",
       "At n = 2 both teams are singletons, so a witness is just a triple "
       "(initial value u, op a, op b) and the one-shot schedule tree has "
       "four nodes: (a), (ab), (b), (ba). The rule evaluates the "
       "discerning R-sets and recording U-sets of every triple directly "
       "from the delta table — O(values x ops^2) work — and the "
       "v-hiding condition (2) is vacuous because both opposing teams "
       "have size 1. The scan is exact, not approximate: a hit certifies "
       "level >= 2 (the finding names the witness), and a miss proves "
       "level = 1, so the n = 2 runs of the exponential exact deciders "
       "are never needed."},
      {kRuleBoundsStickyPair, "sticky-pair", Severity::kNote,
       "bounds: two ops drive a value to distinct values fixed by both "
       "ops; a witness at every n, so both levels run to the cap",
       "Suppose delta(u,a) = x and delta(u,b) = y with x != y, u not in "
       "{x, y}, and both x and y fixed points of both a and b. Assign op "
       "a to every team-0 process and b to every team-1 process, initial "
       "value u: the first step moves to x or y according to the leading "
       "team, and every later step stays there. So U0 = {x}, U1 = {y} "
       "(disjoint), u is in neither (condition (2) vacuous), and every "
       "recorded (response, value) pair carries x or y in its value "
       "component — both conditions hold at EVERY n. This is the "
       "compare-and-swap / sticky-bit structure: the first writer wins "
       "and the outcome is frozen, which is exactly why those types sit "
       "at the top of both hierarchies. The exact scans are skipped "
       "wholesale; the levels report the cap with exact = false."},
      {kRuleBoundsDivergentClosure, "divergent-closure", Severity::kNote,
       "bounds: two ops drive a value into disjoint absorbing regions "
       "(closure generalization of SA007); a witness at every n",
       "Generalizes SA007 from absorbing values to absorbing regions: if "
       "the {a, b}-closure A of delta(u,a) and the {a, b}-closure B of "
       "delta(u,b) are disjoint and neither contains u, then with op a on "
       "team 0 and op b on team 1 every schedule's value stays in the "
       "region chosen by the leading team (each closure is closed under "
       "both assigned ops). Hence U0 is a subset of A and U1 of B — "
       "disjoint, u in neither, condition (2) vacuous — and R-set values "
       "separate by region, so both conditions hold at every n. Types "
       "whose first operation commits the object to one of two "
       "non-communicating subspaces get their unbounded verdict without "
       "a single decider run."},
      {kRuleOrderEmbedding, "simulates-embedding", Severity::kNote,
       "order: injective strong homomorphism of the low type into the high "
       "one; cons and rcons of the high type dominate the low type's",
       "An embedding is an injective value map, an op map (not required "
       "injective — witness assignments may hand one op to several "
       "processes), and a response map injective on produced responses, "
       "preserving the delta table cell by cell: "
       "delta_high(iota(v), sigma(o)) = (rho(r), iota(v')) whenever "
       "delta_low(v, o) = (r, v'). Soundness: any n-discerning or "
       "n-recording witness of the low type — initial value, team "
       "partition, one op per process — maps through (iota, sigma, rho) to "
       "a witness of the high type at the same n: schedules correspond "
       "step by step, resulting values stay distinct under iota, and "
       "response sets stay disjoint under rho. Hence holds(low, n) implies "
       "holds(high, n) for both conditions, i.e. cons(high) >= cons(low) "
       "and rcons(high) >= rcons(low). The certificate records the three "
       "maps and is re-validated by the independent checker before the "
       "fact enters the lattice."},
      {kRuleOrderIsomorphism, "simulates-isomorphism", Severity::kNote,
       "order: canonical forms equal and complete; the composed labelings "
       "are an isomorphism, so both directed dominance facts hold",
       "When canonicalize_type() returns complete forms with identical "
       "keys for both types, composing one labeling with the inverse of "
       "the other yields a bijective relabeling that maps one delta table "
       "exactly onto the other — the strongest possible simulation, in "
       "both directions at once. Both directed facts are emitted with "
       "explicit permutation certificates (each a special case of an "
       "embedding), so the checker validates them like any other map "
       "rather than trusting the canonicalization code. This is how the "
       "order lattice collapses relabeled duplicates: profiling one "
       "representative decides every per-n verdict of its whole orbit, "
       "the same equivalence PR 5's verdict cache exploits via canonical "
       "keys."},
      {kRuleOrderQuotient, "simulates-quotient", Severity::kNote,
       "order: the low type embeds only after SA001/SA002 level-preserving "
       "quotient removals (oblivious / duplicate ops dropped first)",
       "Some low types carry operations that provably add no consensus "
       "power: constant-response self-loops (SA001) and ops whose rows "
       "duplicate an earlier kept op (SA002). PR 6 establishes that "
       "removing them preserves both levels exactly, so an embedding of "
       "the quotient into the high type certifies the same dominance as a "
       "full embedding: holds(low, n) = holds(quotient, n) implies "
       "holds(high, n). The certificate lists each removal with its "
       "justification (oblivious, or the kept twin's id), and the "
       "independent checker re-derives both the justifications and the "
       "embedding from the delta tables — removals are never taken on the "
       "search's word. Removals are only ever needed on the low side: a "
       "removed op needs no image, while extra high-side ops are simply "
       "unused."},
      {kRuleOrderProjection, "simulates-projection", Severity::kNote,
       "order: surjective strong projection of the high type onto the low "
       "one (product/restriction decomposition); dominance flows the same "
       "way as for embeddings",
       "A projection maps every HIGH value onto a low value (surjectively) "
       "such that applying a mapped op in the high type tracks the low "
       "type's transition on images: pi(delta_high(v, sigma(o)).next) = "
       "delta_low(pi(v), o).next with responses rho(low response) exactly. "
       "Soundness: lift a low witness by picking any preimage of its "
       "initial value — every schedule of the lifted assignment then "
       "mirrors the low schedule, resulting values project into the low "
       "U-sets (so disjointness lifts through disjoint fibers) and "
       "responses correspond under the injective rho, so both conditions "
       "transfer at every n. This captures product structure (high = low "
       "x rest: drop the rest coordinate) and is genuinely weaker than "
       "SA009 — a projection can exist when no fiber section is closed "
       "under the ops, so no embedding exists."},
  };
  return *kRules;
}

const RuleInfo& rule(const char* id) {
  for (const RuleInfo& r : all_rules()) {
    if (std::strcmp(r.id, id) == 0) return r;
  }
  RCONS_CHECK(false && "unknown lint rule id");
  return all_rules().front();  // unreachable
}

const RuleInfo* find_rule(const char* id) {
  for (const RuleInfo& r : all_rules()) {
    if (std::strcmp(r.id, id) == 0) return &r;
  }
  return nullptr;
}

std::string render_rule_table() {
  std::string out;
  char line[512];
  for (const RuleInfo& r : all_rules()) {
    std::snprintf(line, sizeof(line), "%-6s %-26s %-8s %s\n", r.id, r.name,
                  severity_name(r.severity), r.summary);
    out += line;
  }
  return out;
}

std::string render_rule_explain(const RuleInfo& info) {
  return std::string(info.id) + " " + info.name + " (" +
         severity_name(info.severity) + ")\n  " + info.summary + "\n\n" +
         info.explain + "\n";
}

std::string render_rule_json(const RuleInfo& info) {
  return std::string("{\"rule\":\"") + info.id + "\",\"name\":\"" +
         info.name + "\",\"severity\":\"" + severity_name(info.severity) +
         "\",\"summary\":\"" + json_escape(info.summary) +
         "\",\"explain\":\"" + json_escape(info.explain) + "\"}";
}

std::string render_rules_json() {
  std::string out = "{\"rules\":[";
  bool first = true;
  for (const RuleInfo& r : all_rules()) {
    if (!first) out += ",";
    first = false;
    out += render_rule_json(r);
  }
  out += "]}";
  return out;
}

Diagnostic make_diagnostic(const char* id, std::string subject,
                           std::string location, std::string message,
                           std::string hint) {
  const RuleInfo& info = rule(id);
  Diagnostic d;
  d.rule = info.id;
  d.rule_name = info.name;
  d.severity = info.severity;
  d.subject = std::move(subject);
  d.location = std::move(location);
  d.message = std::move(message);
  d.hint = std::move(hint);
  return d;
}

}  // namespace rcons::analysis
