#include "analysis/recovery_audit.hpp"

#include <cstdint>
#include <iterator>
#include <limits>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/rules.hpp"
#include "trace/replay.hpp"
#include "util/hashing.hpp"
#include "util/parallel.hpp"

namespace rcons::analysis {

namespace {

using exec::Action;
using exec::LocalState;
using exec::ObjectId;
using exec::ProcessId;
using exec::Protocol;

bool same_action(const Action& a, const Action& b) {
  return a.kind == b.kind && a.object == b.object && a.op == b.op &&
         a.decision == b.decision && a.durable == b.durable;
}

/// Shadow-persistency configuration of one solo process: volatile front
/// values, persisted shadows, and the (volatile) local state.
struct ShadowState {
  std::vector<spec::ValueId> vol;
  std::vector<spec::ValueId> shadow;
  LocalState local;
};

std::vector<std::int64_t> state_key(const ShadowState& s) {
  std::vector<std::int64_t> key;
  key.reserve(s.vol.size() + s.shadow.size() + s.local.words.size() + 2);
  for (spec::ValueId v : s.vol) key.push_back(v);
  key.push_back(std::numeric_limits<std::int64_t>::min());
  for (spec::ValueId v : s.shadow) key.push_back(v);
  key.push_back(std::numeric_limits<std::int64_t>::min());
  key.insert(key.end(), s.local.words.begin(), s.local.words.end());
  return key;
}

struct KeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_vector(key));
  }
};

/// One deterministic replay from a given shadow configuration to the
/// process's decision (or a cycle / step bound).
struct RunOutcome {
  bool decided = false;
  int decision = -1;
  bool bound_hit = false;
  bool invalid = false;  // out-of-range action; PL002's domain

  bool nondet = false;
  std::string nondet_detail;

  // Persist-gap facts along the path (first occurrence each).
  int relaxed_write_step = -1;
  ObjectId relaxed_write_obj = -1;
  int taint_step = -1;
  ObjectId taint_obj = -1;
  int tainted_write_step = -1;
  ObjectId tainted_write_obj = -1;

  /// Pre-step snapshots; if decided, the last entry is the output state
  /// itself (every entry is a legal crash point).
  std::vector<ShadowState> points;
  std::vector<spec::ValueId> final_shadow;
  long long steps = 0;
};

/// Crash transition: volatile values revert to their shadows, local state
/// resets. This is the strict (drop) semantics.
ShadowState crashed(const Protocol& protocol, ProcessId pid, int input,
                    const ShadowState& s) {
  ShadowState next;
  next.vol = s.shadow;
  next.shadow = s.shadow;
  next.local = protocol.initial_state(pid, input);
  return next;
}

/// Hypothetical flush-then-crash transition: as if every pending store
/// had reached its barrier just before the crash (RC004's comparison
/// point).
ShadowState crashed_flushed(const Protocol& protocol, ProcessId pid,
                            int input, const ShadowState& s) {
  ShadowState next;
  next.vol = s.vol;
  next.shadow = s.vol;
  next.local = protocol.initial_state(pid, input);
  return next;
}

RunOutcome run(const Protocol& protocol, ProcessId pid, int /*input*/,
               ShadowState state, const RecoveryAuditOptions& options,
               long long& unit_steps) {
  RunOutcome out;
  const int object_count = protocol.object_count();
  std::unordered_set<std::vector<std::int64_t>, KeyHash> visited;
  bool taint = false;

  while (true) {
    if (out.steps >= options.max_steps || unit_steps >= options.max_total_steps) {
      out.bound_hit = true;
      return out;
    }
    if (!visited.insert(state_key(state)).second) {
      return out;  // cycle without deciding
    }

    const Action action = protocol.poised(pid, state.local);
    if (!same_action(action, protocol.poised(pid, state.local))) {
      out.nondet = true;
      out.nondet_detail = "poised() returned two different actions for the "
                          "same local state";
      return out;
    }

    out.points.push_back(state);

    if (action.kind == Action::Kind::kDecided) {
      out.decided = true;
      out.decision = action.decision;
      out.final_shadow = state.shadow;
      return out;
    }
    if (action.object < 0 || action.object >= object_count) {
      out.invalid = true;
      return out;
    }
    const spec::ObjectType& type = protocol.object_type(action.object);
    if (action.op < 0 || action.op >= type.op_count()) {
      out.invalid = true;
      return out;
    }

    const std::size_t obj = static_cast<std::size_t>(action.object);
    const spec::ValueId vol = state.vol[obj];
    const spec::ValueId shadow = state.shadow[obj];
    const spec::Effect& effect = type.apply(vol, action.op);

    if (vol != shadow &&
        type.apply(shadow, action.op).response != effect.response) {
      // The response observed data that exists only in the volatile front
      // value — a crash here would make this observation unrepeatable.
      taint = true;
      if (out.taint_step < 0) {
        out.taint_step = static_cast<int>(out.steps);
        out.taint_obj = action.object;
      }
    }
    const bool writes = effect.next_value != vol;
    if (writes && taint && out.tainted_write_step < 0) {
      out.tainted_write_step = static_cast<int>(out.steps);
      out.tainted_write_obj = action.object;
    }
    if (writes && !action.durable && out.relaxed_write_step < 0) {
      out.relaxed_write_step = static_cast<int>(out.steps);
      out.relaxed_write_obj = action.object;
    }

    state.vol[obj] = effect.next_value;
    if (action.durable) state.shadow[obj] = effect.next_value;

    const LocalState next_local =
        protocol.advance(pid, state.local, effect.response);
    if (next_local != protocol.advance(pid, state.local, effect.response)) {
      out.nondet = true;
      out.nondet_detail = "advance() returned two different states for the "
                          "same (state, response)";
      return out;
    }
    state.local = next_local;
    ++out.steps;
    ++unit_steps;
  }
}

std::string where(ProcessId pid, int input) {
  return "process " + std::to_string(pid) + ", input " + std::to_string(input);
}

/// `count` solo steps of `pid` (witness-schedule building block).
exec::Schedule solo_steps(ProcessId pid, long long count) {
  exec::Schedule out;
  out.reserve(static_cast<std::size_t>(count));
  for (long long i = 0; i < count; ++i) {
    out.push_back(exec::Event::step(pid));
  }
  return out;
}

exec::Schedule operator+(exec::Schedule a, const exec::Schedule& b) {
  a.insert(a.end(), b.begin(), b.end());
  return a;
}

std::string object_ref(const Protocol& protocol, ObjectId obj) {
  return "object " + std::to_string(obj) + " ('" +
         protocol.object_type(obj).name() + "')";
}

std::string shadow_diff(const std::vector<spec::ValueId>& a,
                        const std::vector<spec::ValueId>& b) {
  std::string out;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    if (a[i] == b[i]) continue;
    if (!out.empty()) out += ", ";
    out += "object " + std::to_string(i) + ": " + std::to_string(a[i]) +
           " vs " + std::to_string(b[i]);
  }
  return out;
}

/// Audits one (process, input) unit; findings go to `report` (at most one
/// finding per rule per unit, first occurrence wins, so reports stay
/// stable and small).
void audit_unit(const Protocol& protocol, ProcessId pid, int input,
                const RecoveryAuditOptions& options, Report& report,
                std::vector<trace::Counterexample>* traces) {
  const std::string subject = protocol.name();
  const std::string loc = where(pid, input);
  const int declared = protocol.declared_crash_budget();
  const int budget = declared >= 0 ? declared : options.crash_budget;
  const exec::Schedule crash_sched{exec::Event::crash(pid)};
  long long unit_steps = 0;

  bool saw_bound = false;
  bool rc2_done = false, rc3_done = false, rc6_done = false;

  // One replayable .trace per warning/error finding: the exact solo
  // schedule that demonstrates the violation, finalized (verdict + shadow
  // hash) by the deterministic replay. RC001 is the one exception — a
  // nondeterministic protocol has no deterministic replay by definition.
  const auto capture = [&](exec::Schedule witness, const char* rule,
                           std::string note) {
    if (traces != nullptr) {
      traces->push_back(trace::capture_rc(protocol, pid, input,
                                          std::move(witness), rule,
                                          loc + ": " + std::move(note)));
    }
  };

  const auto nondet_finding = [&](const RunOutcome& r) {
    report.add(make_diagnostic(
        kRuleRecoveryDeterminism, subject, loc, r.nondet_detail,
        "poised()/advance() must be pure functions of the handed-in state; "
        "hidden mutable state cannot survive the paper's crash-reset "
        "semantics"));
  };

  // Decision-stability violations are the declared-budget contract when
  // the protocol annotates one (RC006); otherwise they are RC002.
  const auto stability_finding = [&](int crashes_used, const std::string& msg,
                                     exec::Schedule witness) {
    if (declared >= 0) {
      if (rc6_done) return;
      rc6_done = true;
      const std::string message =
          "declares crash budget z=" + std::to_string(declared) +
          " (solo E_z projection) but with " + std::to_string(crashes_used) +
          " crash(es) " + msg;
      report.add(make_diagnostic(
          kRuleCrashBudget, subject, loc, message,
          "either the budget annotation overclaims or the recovery path "
          "fails to re-derive its state from NVM"));
      capture(std::move(witness), kRuleCrashBudget, message);
    } else {
      if (rc2_done) return;
      rc2_done = true;
      report.add(make_diagnostic(
          kRuleDecisionStability, subject, loc, msg,
          "record the decision durably and re-derive it from shared "
          "objects alone on recovery"));
      capture(std::move(witness), kRuleDecisionStability, msg);
    }
  };

  ShadowState start;
  start.vol.reserve(static_cast<std::size_t>(protocol.object_count()));
  for (ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
    start.vol.push_back(protocol.initial_value(obj));
  }
  start.shadow = start.vol;
  start.local = protocol.initial_state(pid, input);

  const RunOutcome primary =
      run(protocol, pid, input, start, options, unit_steps);
  if (primary.nondet) {
    nondet_finding(primary);
    return;  // replays are meaningless past this point
  }
  if (primary.invalid) return;  // PL002 reports the broken action table
  saw_bound = saw_bound || primary.bound_hit;

  // Persist-gap facts are collected over every replay (primary and
  // recoveries); report after the crash battery below.
  int relaxed_step = primary.relaxed_write_step;
  ObjectId relaxed_obj = primary.relaxed_write_obj;
  int taint_write_step = primary.tainted_write_step;
  ObjectId taint_write_obj = primary.tainted_write_obj;
  ObjectId taint_obj = primary.taint_obj;
  // Witnesses crash right after the offending store, so the replay shows
  // the drop event for the unflushed object.
  exec::Schedule relaxed_witness;
  if (relaxed_step >= 0) {
    relaxed_witness = solo_steps(pid, relaxed_step + 1) + crash_sched;
  }
  exec::Schedule taint_witness;
  if (taint_write_step >= 0) {
    taint_witness = solo_steps(pid, taint_write_step + 1) + crash_sched;
  }
  const auto merge_gap_facts = [&](const RunOutcome& r,
                                   const exec::Schedule& prefix) {
    if (relaxed_step < 0 && r.relaxed_write_step >= 0) {
      relaxed_step = r.relaxed_write_step;
      relaxed_obj = r.relaxed_write_obj;
      relaxed_witness =
          prefix + solo_steps(pid, r.relaxed_write_step + 1) + crash_sched;
    }
    if (taint_write_step < 0 && r.tainted_write_step >= 0) {
      taint_write_step = r.tainted_write_step;
      taint_write_obj = r.tainted_write_obj;
      taint_obj = r.taint_obj;
      taint_witness =
          prefix + solo_steps(pid, r.tainted_write_step + 1) + crash_sched;
    }
  };

  if (budget >= 1 && primary.decided) {
    const std::size_t decided_point = primary.points.size() - 1;
    for (std::size_t k = 0; k < primary.points.size(); ++k) {
      const ShadowState& at = primary.points[k];
      const RunOutcome rec1 = run(protocol, pid, input,
                                  crashed(protocol, pid, input, at), options,
                                  unit_steps);
      if (rec1.nondet) {
        nondet_finding(rec1);
        return;
      }
      saw_bound = saw_bound || rec1.bound_hit;
      if (rec1.invalid) continue;
      const exec::Schedule rec1_prefix =
          solo_steps(pid, static_cast<long long>(k)) + crash_sched;
      merge_gap_facts(rec1, rec1_prefix);
      const exec::Schedule rec1_witness =
          rec1_prefix + solo_steps(pid, rec1.steps);

      const bool post_decision = k == decided_point;
      if (!rec1.decided && !rec1.bound_hit && post_decision) {
        stability_finding(
            1, "a crash at the output state leads to a recovery that never "
               "re-decides (decided " +
                   std::to_string(primary.decision) + " before the crash)",
            rec1_witness);
      }
      if (rec1.decided && rec1.decision != primary.decision) {
        if (post_decision) {
          stability_finding(
              1, "recovery after a crash at the output state decides " +
                     std::to_string(rec1.decision) + ", not the already-" +
                     "output " + std::to_string(primary.decision),
              rec1_witness);
        } else if (declared >= 0) {
          stability_finding(
              1, "a crash at step " + std::to_string(k) +
                     " makes the recovery decide " +
                     std::to_string(rec1.decision) + " where the crash-free "
                     "run decides " + std::to_string(primary.decision),
              rec1_witness);
        }
        // Pre-decision divergence without a declared budget is PL007's
        // finding; the RC family does not duplicate it.
      }

      // RC004: if the state at this legal crash point holds an unflushed
      // store, compare dropping it against the flushed hypothetical; any
      // behavioral difference proves the gap is observable.
      if (at.vol != at.shadow) {
        const RunOutcome kept = run(protocol, pid, input,
                                    crashed_flushed(protocol, pid, input, at),
                                    options, unit_steps);
        saw_bound = saw_bound || kept.bound_hit;
        if (!kept.nondet && !kept.invalid && relaxed_step < 0 &&
            (kept.decided != rec1.decided ||
             (kept.decided && kept.decision != rec1.decision))) {
          relaxed_step = static_cast<int>(k);
          relaxed_witness = rec1_witness;
          for (std::size_t i = 0; i < at.vol.size(); ++i) {
            if (at.vol[i] != at.shadow[i]) {
              relaxed_obj = static_cast<ObjectId>(i);
              break;
            }
          }
        }
      }

      if (budget >= 2 && rec1.decided && !rc3_done) {
        for (std::size_t j = 0; j < rec1.points.size(); ++j) {
          const RunOutcome rec2 =
              run(protocol, pid, input,
                  crashed(protocol, pid, input, rec1.points[j]), options,
                  unit_steps);
          if (rec2.nondet) {
            nondet_finding(rec2);
            return;
          }
          saw_bound = saw_bound || rec2.bound_hit;
          if (!rec2.decided || rec2.invalid) continue;
          const exec::Schedule rec2_prefix =
              rec1_prefix + solo_steps(pid, static_cast<long long>(j)) +
              crash_sched;
          merge_gap_facts(rec2, rec2_prefix);
          if (rec2.decision != rec1.decision) {
            stability_finding(
                2, "a second crash during recovery (first crash at step " +
                       std::to_string(k) + ", second at recovery step " +
                       std::to_string(j) + ") decides " +
                       std::to_string(rec2.decision) + ", not " +
                       std::to_string(rec1.decision),
                rec2_prefix + solo_steps(pid, rec2.steps));
            continue;
          }
          if (rec2.final_shadow != rec1.final_shadow && !rc3_done) {
            rc3_done = true;
            const std::string message =
                "re-executing the recovery prefix after a second crash "
                "(first at step " +
                std::to_string(k) + ", second at recovery step " +
                std::to_string(j) + ") reaches a different persisted state: " +
                shadow_diff(rec1.final_shadow, rec2.final_shadow);
            report.add(make_diagnostic(
                kRuleRecoveryIdempotence, subject, loc, message,
                "recovery must be NVM-idempotent: every retry writes the "
                "same durable values (use CAS/sticky writes, not "
                "accumulating updates)"));
            capture(rec2_prefix + solo_steps(pid, rec2.steps),
                    kRuleRecoveryIdempotence, message);
          }
          if (unit_steps >= options.max_total_steps) break;
        }
      }
      if (unit_steps >= options.max_total_steps) {
        saw_bound = true;
        break;
      }
    }
  }

  // RC005 subsumes RC004 for the same unit: the observed-and-propagated
  // report pinpoints the same unflushed store with strictly more context.
  if (taint_write_step >= 0) {
    const std::string message =
        "step " + std::to_string(taint_write_step) +
        " writes to a shared object while holding local state derived "
        "from an unpersisted value of " +
        object_ref(protocol, taint_obj) +
        ": volatile data lost at a crash flows into NVM without being "
        "re-read";
    report.add(make_diagnostic(
        kRuleVolatileTaint, subject, loc, message,
        "persist the observed store before acting on its value, or re-read "
        "the object after a durable barrier"));
    capture(std::move(taint_witness), kRuleVolatileTaint, message);
  } else if (relaxed_step >= 0) {
    const std::string message =
        "step " + std::to_string(relaxed_step) +
        " leaves a value-changing store to " +
        object_ref(protocol, relaxed_obj) +
        " without its persist barrier: a crash at any later step "
        "boundary silently drops it (and other processes can observe "
        "it first)";
    report.add(make_diagnostic(
        kRulePersistGap, subject, loc, message,
        "issue the persist barrier as part of the step "
        "(Action::invoke instead of invoke_relaxed, or an explicit "
        "PVar::persist in the runtime)"));
    capture(std::move(relaxed_witness), kRulePersistGap, message);
  }

  if (saw_bound) {
    report.add(make_diagnostic(
        kRuleStateBoundHit, subject, loc,
        "recovery audit truncated by its step budget; RC findings for this "
        "unit are best-effort",
        "raise RecoveryAuditOptions::max_steps/max_total_steps for "
        "exhaustive claims"));
  }
}

}  // namespace

Report audit_recovery(const exec::Protocol& protocol,
                      const RecoveryAuditOptions& options) {
  return audit_recovery_traced(protocol, options).report;
}

RecoveryAuditResult audit_recovery_traced(const exec::Protocol& protocol,
                                          const RecoveryAuditOptions& options) {
  const int n = protocol.process_count();
  const std::size_t units = static_cast<std::size_t>(n) * 2;
  RecoveryAuditResult result;

  // Object-table sanity: lint_protocol reports broken tables (PL002); the
  // audit just declines to replay them.
  for (ObjectId obj = 0; obj < protocol.object_count(); ++obj) {
    const spec::ValueId init = protocol.initial_value(obj);
    if (init < 0 || init >= protocol.object_type(obj).value_count()) {
      return result;
    }
  }

  // One report buffer (and counterexample list) per (process, input) unit,
  // filled in parallel and merged in unit order — the same deterministic-
  // reduction contract as every PR-2 engine, so findings AND captured
  // traces are bit-identical for every thread count.
  std::vector<Report> buffers(units);
  std::vector<std::vector<trace::Counterexample>> traces(units);
  util::ThreadPool pool(options.threads);
  pool.parallel_for(units, 1,
                    [&](std::size_t /*chunk*/, std::size_t begin,
                        std::size_t end) {
                      for (std::size_t u = begin; u < end; ++u) {
                        const ProcessId pid = static_cast<ProcessId>(u / 2);
                        const int input = static_cast<int>(u % 2);
                        audit_unit(protocol, pid, input, options, buffers[u],
                                   &traces[u]);
                      }
                    });

  for (std::size_t u = 0; u < units; ++u) {
    result.report.merge(buffers[u]);
    result.counterexamples.insert(
        result.counterexamples.end(),
        std::make_move_iterator(traces[u].begin()),
        std::make_move_iterator(traces[u].end()));
  }
  return result;
}

}  // namespace rcons::analysis
