// Diagnostics for the rcons static-analysis layer.
//
// Every finding produced by the linters (src/analysis/type_lint,
// src/analysis/protocol_lint) is a Diagnostic: a stable rule ID, a
// severity, the subject it was found in (a type or protocol name), a
// free-form location within the subject (a value/op name or a source
// line), a message, and a fix hint. Findings accumulate in a Report,
// which renders itself human-readable or as JSON and answers the only
// question a CI gate needs: "any findings at or above this severity?"
#pragma once

#include <string>
#include <vector>

namespace rcons::analysis {

/// Ordered: higher is worse. kNote findings are informational (op
/// classifications, truncation notices) and never gate anything by
/// default; kError findings fail `rcons_cli lint`.
enum class Severity {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

const char* severity_name(Severity s);

/// One finding. `rule` is the stable ID from rules.hpp (e.g. "TS001");
/// `location` narrows the finding inside `subject` (e.g. "value 'v2'",
/// "line 14", "process 1, input 0").
struct Diagnostic {
  std::string rule;
  std::string rule_name;
  Severity severity = Severity::kNote;
  std::string subject;
  std::string location;
  std::string message;
  std::string hint;
};

/// An ordered collection of findings about one or more subjects.
class Report {
 public:
  void add(Diagnostic d) { diagnostics_.push_back(std::move(d)); }

  /// Appends all of `other`'s findings (multi-target CLI runs).
  void merge(const Report& other);

  /// Sorts findings into the canonical order (rule id, then subject,
  /// location, severity, message). The sort is stable, so findings that
  /// tie on every key keep their emission order. Renderings of a
  /// canonicalized report are byte-identical across runs, thread counts,
  /// and analyzer interleavings.
  void canonicalize();

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }

  int count(Severity s) const;
  int error_count() const { return count(Severity::kError); }
  int warning_count() const { return count(Severity::kWarning); }
  int note_count() const { return count(Severity::kNote); }

  /// True iff some finding has severity >= `threshold`.
  bool has_findings_at_least(Severity threshold) const;

  /// Human-readable rendering, one line per finding plus a summary line:
  ///   subject: error[TS001 unreachable-value] at value 'v2': ... (hint: ...)
  std::string render_text(bool include_notes = true) const;

  /// JSON rendering:
  ///   {"findings":[{"rule":...,"name":...,"severity":...,"subject":...,
  ///     "location":...,"message":...,"hint":...}, ...],
  ///    "errors":N,"warnings":N,"notes":N}
  std::string render_json() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included). Exposed for tools that assemble larger JSON documents.
std::string json_escape(const std::string& s);

}  // namespace rcons::analysis
