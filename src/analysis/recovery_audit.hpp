// Crash-recovery soundness audit (rules RC001–RC006).
//
// The paper's central modeling assumption is what survives a crash: shared
// objects persist, volatile local state is lost, and a recoverable
// protocol must re-derive everything it needs from NVM. The TS/PL rule
// families check specs and solo executions against that model; this audit
// checks the *recovery discipline itself*, over a shadow-persistency
// semantics in which every shared object carries a volatile front value
// and a persisted shadow. Durable invokes (exec::Action::invoke) flush
// the shadow as part of the step — the paper's per-step persistence —
// while relaxed invokes (Action::invoke_relaxed) leave the shadow stale
// until a later durable action on the same object, and a crash reverts
// every object to its shadow (exactly what the strict live runtime,
// RCONS_PMEM_STRICT, does with real threads).
//
// Because protocols and types are deterministic, each (process, input)
// solo run is a single path; the audit replays it, injects crashes at
// every step boundary (and second crashes at every boundary of the
// resulting recovery), and compares decisions and persisted state:
//
//   RC001 recovery-determinism — poised/advance must be pure functions of
//         the handed-in state: a protocol whose step function consults
//         hidden mutable state (anything not reachable from NVM plus the
//         reset local state) breaks every replay-based guarantee.
//   RC002 decision-stability  — a crash at an output state must lead the
//         recovery to re-derive the same decision from shared objects
//         alone.
//   RC003 recovery-idempotence — re-executing the recovery prefix after a
//         second crash must reach the same persisted NVM state as the
//         once-crashed recovery (non-idempotent recovery silently
//         mutates NVM on every retry).
//   RC004 persist-gap         — a value-changing relaxed store is crash-
//         droppable at every subsequent step boundary until its barrier;
//         the store can be observed (by another process, or by recovery
//         re-reading NVM) before it is durable.
//   RC005 volatile-taint      — an operation response that *observed* an
//         unpersisted value (the response differs from what the persisted
//         shadow would produce) flows into a later value-changing shared
//         write: volatile data, lost at a crash, contaminates NVM. When
//         this fires the underlying gap is reported as RC005 only (it
//         subsumes RC004 for that run).
//   RC006 crash-budget        — a protocol declaring an E_z-style budget
//         (Protocol::declared_crash_budget, the solo projection of the
//         paper's execution sets; see sched::CrashAccountant) must keep
//         every decision-stability guarantee on every explored schedule
//         within that budget; violations of the declared contract are
//         reported here instead of RC002.
//
// The audit parallelizes over (process, input) units on the PR-2 thread
// pool; per-unit reports are merged in unit order, so findings are
// bit-identical for every thread count (see DESIGN.md §8).
#pragma once

#include <vector>

#include "analysis/diagnostic.hpp"
#include "exec/protocol.hpp"
#include "trace/counterexample.hpp"

namespace rcons::analysis {

struct RecoveryAuditOptions {
  /// Crashes injected per explored path when the protocol declares no
  /// budget of its own (declared_crash_budget() >= 0 takes precedence).
  /// Budget 1 enables the single-crash rules (RC002, RC004, RC005);
  /// budget >= 2 additionally enables the double-crash idempotence rule
  /// (RC003).
  int crash_budget = 2;

  /// Bound on steps per deterministic replay; a run that exceeds it (or
  /// cycles without deciding) is abandoned and absence claims degrade to
  /// a state-bound note.
  int max_steps = 4096;

  /// Global step budget per (process, input) unit across all replays.
  long long max_total_steps = 1 << 20;

  /// Worker threads for the unit-parallel audit; <= 0 means hardware
  /// concurrency, 1 is the serial engine. Findings are identical for
  /// every value.
  int threads = 1;
};

/// The audit's findings plus one replayable counterexample per
/// warning/error finding: the exact solo schedule (steps and crash
/// injections) that demonstrates the rule violation, finalized with the
/// deterministic replay verdict and shadow-state hash (DESIGN.md §9).
/// Counterexamples follow the findings' unit-merge order, so the list is
/// bit-identical for every thread count.
struct RecoveryAuditResult {
  Report report;
  std::vector<trace::Counterexample> counterexamples;
};

/// Runs every RC rule against `protocol`.
Report audit_recovery(const exec::Protocol& protocol,
                      const RecoveryAuditOptions& options = {});

/// As audit_recovery, but also captures replayable witness schedules.
RecoveryAuditResult audit_recovery_traced(
    const exec::Protocol& protocol, const RecoveryAuditOptions& options = {});

}  // namespace rcons::analysis
