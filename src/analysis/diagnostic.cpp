#include "analysis/diagnostic.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <tuple>

namespace rcons::analysis {

const char* severity_name(Severity s) {
  switch (s) {
    case Severity::kNote:
      return "note";
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

void Report::merge(const Report& other) {
  diagnostics_.insert(diagnostics_.end(), other.diagnostics_.begin(),
                      other.diagnostics_.end());
}

void Report::canonicalize() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::tie(a.rule, a.subject, a.location, a.severity,
                                     a.message) <
                            std::tie(b.rule, b.subject, b.location, b.severity,
                                     b.message);
                   });
}

int Report::count(Severity s) const {
  int n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == s) ++n;
  }
  return n;
}

bool Report::has_findings_at_least(Severity threshold) const {
  for (const auto& d : diagnostics_) {
    if (d.severity >= threshold) return true;
  }
  return false;
}

std::string Report::render_text(bool include_notes) const {
  std::ostringstream oss;
  for (const auto& d : diagnostics_) {
    if (!include_notes && d.severity == Severity::kNote) continue;
    oss << d.subject << ": " << severity_name(d.severity) << "[" << d.rule
        << " " << d.rule_name << "]";
    if (!d.location.empty()) oss << " at " << d.location;
    oss << ": " << d.message;
    if (!d.hint.empty()) oss << " (hint: " << d.hint << ")";
    oss << "\n";
  }
  oss << error_count() << " error(s), " << warning_count()
      << " warning(s), " << note_count() << " note(s)\n";
  return oss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string Report::render_json() const {
  std::ostringstream oss;
  oss << "{\"findings\":[";
  bool first = true;
  for (const auto& d : diagnostics_) {
    if (!first) oss << ",";
    first = false;
    oss << "{\"rule\":\"" << json_escape(d.rule) << "\""
        << ",\"name\":\"" << json_escape(d.rule_name) << "\""
        << ",\"severity\":\"" << severity_name(d.severity) << "\""
        << ",\"subject\":\"" << json_escape(d.subject) << "\""
        << ",\"location\":\"" << json_escape(d.location) << "\""
        << ",\"message\":\"" << json_escape(d.message) << "\""
        << ",\"hint\":\"" << json_escape(d.hint) << "\"}";
  }
  oss << "],\"errors\":" << error_count()
      << ",\"warnings\":" << warning_count()
      << ",\"notes\":" << note_count() << "}";
  return oss.str();
}

}  // namespace rcons::analysis
