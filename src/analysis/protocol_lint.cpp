#include "analysis/protocol_lint.hpp"

#include <cstdint>
#include <deque>
#include <limits>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/rules.hpp"
#include "util/hashing.hpp"

namespace rcons::analysis {

namespace {

using exec::Action;
using exec::LocalState;
using exec::ObjectId;
using exec::ProcessId;
using exec::Protocol;

/// One node of the solo-with-crashes exploration. `persisted` records
/// whether any step so far observably changed a shared object's value; it
/// survives crashes (durable writes do), unlike the local state.
struct Node {
  std::vector<spec::ValueId> objects;
  LocalState local;
  int crashes = 0;
  bool persisted = false;
};

struct NodeKeyHash {
  std::size_t operator()(const std::vector<std::int64_t>& key) const {
    return static_cast<std::size_t>(hash_vector(key));
  }
};

std::vector<std::int64_t> node_key(const Node& n) {
  std::vector<std::int64_t> key;
  key.reserve(n.objects.size() + n.local.words.size() + 3);
  key.push_back(n.crashes * 2 + (n.persisted ? 1 : 0));
  for (spec::ValueId v : n.objects) key.push_back(v);
  key.push_back(std::numeric_limits<std::int64_t>::min());  // separator
  key.insert(key.end(), n.local.words.begin(), n.local.words.end());
  return key;
}

std::string where(ProcessId pid, int input) {
  return "process " + std::to_string(pid) + ", input " +
         std::to_string(input);
}

/// Everything observed while exploring one (process, input).
struct Exploration {
  std::set<int> decisions;
  bool decided_without_persist = false;
  bool bound_hit = false;
  bool invalid_action = false;
  std::string invalid_action_detail;
  std::set<int> invalid_decisions;
};

Exploration explore(const Protocol& protocol, ProcessId pid, int input,
                    const ProtocolLintOptions& options,
                    std::vector<bool>& objects_used) {
  Exploration out;
  const int object_count = protocol.object_count();

  Node start;
  start.objects.reserve(static_cast<std::size_t>(object_count));
  for (ObjectId obj = 0; obj < object_count; ++obj) {
    start.objects.push_back(protocol.initial_value(obj));
  }
  start.local = protocol.initial_state(pid, input);

  std::unordered_set<std::vector<std::int64_t>, NodeKeyHash> visited;
  std::deque<Node> queue;
  visited.insert(node_key(start));
  queue.push_back(std::move(start));

  while (!queue.empty()) {
    if (static_cast<int>(visited.size()) > options.max_states) {
      out.bound_hit = true;
      break;
    }
    const Node node = std::move(queue.front());
    queue.pop_front();

    const auto enqueue = [&](Node next) {
      if (visited.insert(node_key(next)).second) {
        queue.push_back(std::move(next));
      }
    };

    // A crash is possible from any state: local state resets, objects and
    // the durable-write flag survive.
    if (node.crashes < options.crash_budget) {
      Node next = node;
      next.local = protocol.initial_state(pid, input);
      next.crashes = node.crashes + 1;
      enqueue(std::move(next));
    }

    const Action action = protocol.poised(pid, node.local);
    if (action.kind == Action::Kind::kDecided) {
      out.decisions.insert(action.decision);
      if (action.decision != 0 && action.decision != 1) {
        out.invalid_decisions.insert(action.decision);
      }
      if (!node.persisted) out.decided_without_persist = true;
      continue;  // output states only no-op (and crash, handled above)
    }

    if (action.object < 0 || action.object >= object_count) {
      out.invalid_action = true;
      out.invalid_action_detail =
          "poised on object " + std::to_string(action.object) + " of " +
          std::to_string(object_count);
      continue;
    }
    const spec::ObjectType& type = protocol.object_type(action.object);
    if (action.op < 0 || action.op >= type.op_count()) {
      out.invalid_action = true;
      out.invalid_action_detail =
          "poised on op " + std::to_string(action.op) + " of type '" +
          type.name() + "' (" + std::to_string(type.op_count()) + " ops)";
      continue;
    }
    objects_used[static_cast<std::size_t>(action.object)] = true;

    const spec::ValueId value =
        node.objects[static_cast<std::size_t>(action.object)];
    const spec::Effect& effect = type.apply(value, action.op);
    Node next = node;
    next.objects[static_cast<std::size_t>(action.object)] = effect.next_value;
    // Only durable writes count as observable persistence: a relaxed
    // store can still be dropped by a crash, so it is no evidence that
    // the decision left a trace (rule PL006's invariant).
    next.persisted =
        node.persisted || (effect.next_value != value && action.durable);
    next.local = protocol.advance(pid, node.local, effect.response);
    enqueue(std::move(next));
  }
  return out;
}

}  // namespace

Report lint_protocol(const Protocol& protocol,
                     const ProtocolLintOptions& options) {
  Report report;
  const std::string subject = protocol.name();
  const int n = protocol.process_count();
  const int object_count = protocol.object_count();

  // Object table sanity first; a broken table would poison the exploration.
  bool table_ok = true;
  for (ObjectId obj = 0; obj < object_count; ++obj) {
    const spec::ObjectType& type = protocol.object_type(obj);
    const spec::ValueId init = protocol.initial_value(obj);
    if (init < 0 || init >= type.value_count()) {
      report.add(make_diagnostic(
          kRuleInvalidAction, subject, "object " + std::to_string(obj),
          "initial value " + std::to_string(init) + " outside type '" +
              type.name() + "' (" + std::to_string(type.value_count()) +
              " values)",
          "fix the protocol's object table"));
      table_ok = false;
    }
  }
  if (!table_ok) return report;

  std::vector<bool> objects_used(static_cast<std::size_t>(object_count),
                                 false);
  bool any_bound_hit = false;
  for (ProcessId pid = 0; pid < n; ++pid) {
    for (int input = 0; input <= 1; ++input) {
      const Exploration e =
          explore(protocol, pid, input, options, objects_used);

      if (e.invalid_action) {
        report.add(make_diagnostic(
            kRuleInvalidAction, subject, where(pid, input),
            e.invalid_action_detail,
            "poised() must return object/op ids inside the object table"));
      }
      for (int d : e.invalid_decisions) {
        report.add(make_diagnostic(
            kRuleInvalidDecision, subject, where(pid, input),
            "output state decides " + std::to_string(d) +
                ", not a binary consensus value",
            "decisions must be 0 or 1"));
      }
      if (e.bound_hit) {
        any_bound_hit = true;
        report.add(make_diagnostic(
            kRuleStateBoundHit, subject, where(pid, input),
            "exploration truncated at " + std::to_string(options.max_states) +
                " states",
            "raise ProtocolLintOptions::max_states for exhaustive claims"));
      }
      if (e.decisions.empty() && !e.bound_hit && !e.invalid_action) {
        report.add(make_diagnostic(
            kRuleNoOutputState, subject, where(pid, input),
            "no output state reachable running solo (with up to " +
                std::to_string(options.crash_budget) +
                " crash(es)): the process can never decide",
            "solo crash-free runs must terminate for recoverable "
            "wait-freedom"));
      }
      if (e.decided_without_persist) {
        report.add(make_diagnostic(
            kRuleDecideBeforePersist, subject, where(pid, input),
            "a path outputs a decision before any observable durable "
            "write: a crash at the output state leaves no trace of the "
            "decision",
            "record the decision in a shared object before entering the "
            "output state (see the durable-decision note in live_run.hpp)"));
      }
      if (e.decisions.size() > 1) {
        std::string vals;
        for (int d : e.decisions) {
          if (!vals.empty()) vals += ", ";
          vals += std::to_string(d);
        }
        report.add(make_diagnostic(
            kRuleCrashDivergentDecision, subject, where(pid, input),
            "crash-recovery paths output different decisions {" + vals +
                "} for the same input",
            "recovery must re-derive the pre-crash decision from durable "
            "state (this is how test&set loses its consensus power under "
            "recovery)"));
      }
    }
  }

  for (ObjectId obj = 0; obj < object_count; ++obj) {
    if (objects_used[static_cast<std::size_t>(obj)]) continue;
    report.add(make_diagnostic(
        kRuleDeadObject, subject, "object " + std::to_string(obj),
        "never used by any reachable poised action of any process" +
            std::string(any_bound_hit ? " (within the explored bound)" : ""),
        "remove the object or fix the states that should reach it"));
  }

  return report;
}

}  // namespace rcons::analysis
