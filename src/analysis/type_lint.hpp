// Static analysis of sequential type specifications.
//
// The paper's exact characterizations — Ruppert's n-discerning condition
// for consensus numbers and DFFR's n-recording condition for recoverable
// consensus numbers — hold only for *deterministic readable* types. A
// .type file can silently leave that regime (an aliased "read" defeats
// the structural readability detector; a duplicated row makes the spec
// non-deterministic) or carry dead weight (unreachable values, inert
// ops) that inflates every exhaustive decision procedure downstream.
// lint_type audits an ObjectType against the TSxxx rules in rules.hpp;
// lint_type_text additionally sees text-level facts (duplicate rows, the
// `initial` directive) that do not survive parsing into an ObjectType.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.hpp"
#include "spec/object_type.hpp"
#include "spec/serialize.hpp"

namespace rcons::analysis {

struct TypeLintOptions {
  /// The value reachability questions start from. When unset, value 0 is
  /// assumed (the catalog's convention) and TS001 downgrades to a note:
  /// without a designated initial value, an "unreachable" value may still
  /// be a legitimate initial value for some assignment (the searched X_n
  /// machines ship such values).
  std::optional<spec::ValueId> initial;

  /// Duplicate transition rows observed by the parser (TS006). Filled in
  /// automatically by lint_type_text.
  std::vector<spec::DuplicateRow> duplicate_rows;

  /// Emit the per-op TS007 classification notes.
  bool classify_ops = true;
};

/// Runs every type-spec rule against `type`.
Report lint_type(const spec::ObjectType& type, const TypeLintOptions& options);

/// Parses `text` as a .type file and lints it, wiring the parser's
/// duplicate-row and `initial` observations into the rules. On a parse
/// error the report carries a single TS008 error describing it (a file
/// that does not parse is by definition not a total deterministic spec).
/// `subject_hint` names the report subject when parsing fails before the
/// type name is known (e.g. the file path).
Report lint_type_text(std::string_view text, std::string_view subject_hint);

}  // namespace rcons::analysis
