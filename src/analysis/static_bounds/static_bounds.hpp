// Static pre-verdict bounds for the consensus hierarchy (DESIGN.md §11).
//
// The exact deciders (hierarchy/discerning, hierarchy/recording) quantify
// over every one-shot schedule of every team assignment, so even a small
// type pays an exponential scan per level. Most verdicts, however, are
// structurally forced by the delta table alone: a type whose operations all
// commute cannot separate two teams, a pair of operations that drive the
// object into disjoint absorbing regions is a recording witness at every n,
// and so on. This module evaluates eight such rules (SA001-SA008, registry
// in analysis/rules.hpp) by direct dataflow over spec::ObjectType and emits
// a BoundsReport: sound [lo, hi] brackets for the discerning and recording
// levels plus a rule-tagged findings Report and a quotient type with
// power-irrelevant operations removed.
//
// Soundness contract: for every type T and every n >= 2,
//   n <= bracket.lo  =>  the exact condition holds at n, and
//   n  > bracket.hi  =>  the exact condition fails at n,
// where each certified lo extends downward by the scan monotonicity the
// level scans already assume. The hierarchy layer may therefore skip any
// exact run the bracket decides, and may hand the deciders the quotient
// type instead of the original (SA001/SA002 preserve both levels exactly).
// Every rule's argument is spelled out in DESIGN.md §11 and pinned by the
// golden corpus plus the seeded differentials in
// tests/static_bounds_test.cpp; an unsound rule fails CI, not the user.
#pragma once

#include <string>

#include "analysis/diagnostic.hpp"
#include "spec/object_type.hpp"

namespace rcons::analysis {

/// Sentinel for "no finite bound": a lo of kLevelUnbounded certifies the
/// condition at every n the deciders accept; a hi of kLevelUnbounded means
/// no upper bound was established.
inline constexpr int kLevelUnbounded = 1 << 30;

/// One sound bracket on a hierarchy level, with the rule id that certified
/// each edge (empty = the trivial floor lo=1 / ceiling hi=unbounded).
struct LevelBracket {
  int lo = 1;
  int hi = kLevelUnbounded;
  std::string lo_by;
  std::string hi_by;

  /// True iff the bracket already decides the per-n verdict.
  bool decides(int n) const { return n <= lo || n > hi; }
  /// The decided verdict for an n with decides(n).
  bool verdict(int n) const { return n <= lo; }
  /// The rule that certifies the verdict for an n with decides(n).
  const std::string& decided_by(int n) const {
    return n <= lo ? lo_by : hi_by;
  }

  std::string to_string() const;
  std::string render_json() const;
};

/// The result of the static pass over one type.
struct BoundsReport {
  std::string type_name;
  /// Brackets the discerning level (== consensus number for readable
  /// types) and the recording level (== recoverable consensus number).
  LevelBracket discerning;
  LevelBracket recording;
  /// At most one finding per fired SA rule (plus one per eliminated op for
  /// SA001/SA002), in canonical order (rule id, subject, location).
  Report findings;
  /// SA001/SA002 quotient: the type with dead and duplicate operations
  /// removed. Equal to the analyzed type when quotient_reduced is false.
  /// Both levels of the quotient equal those of the original exactly, so
  /// exact deciders may run on it in place of the original.
  spec::ObjectType quotient;
  bool quotient_reduced = false;
  int ops_removed = 0;

  /// True iff every per-n verdict in [2, max_n] is decided for both kinds
  /// (no exact decider run is needed to profile up to max_n).
  bool decides_profile(int max_n) const {
    const auto full = [max_n](const LevelBracket& b) {
      return b.lo >= max_n || b.hi <= b.lo;
    };
    return full(discerning) && full(recording);
  }

  /// The `"bounds"` JSON object for `profile --format=json`:
  ///   {"cons":{"lo":..,"hi":..,"lo_by":..,"hi_by":..},"rcons":{...},
  ///    "rules":[...],"ops_removed":N}
  /// Unbounded edges render as the string "inf".
  std::string render_json() const;

  /// Human-readable summary for `profile` text output.
  std::string describe() const;
};

/// Runs SA001-SA008 over `type`. `subject` labels the findings (defaults
/// to the type's name; the CLI passes the file path for file targets).
/// Deterministic: equal inputs produce byte-identical reports. Cost is
/// O(values^2 * ops^2), negligible next to any exact decider run.
BoundsReport analyze_static_bounds(const spec::ObjectType& type,
                                   const std::string& subject = "");

}  // namespace rcons::analysis
