#include "analysis/static_bounds/static_bounds.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include "analysis/rules.hpp"
#include "analysis/static_bounds/pair_scans.hpp"
#include "spec/builder.hpp"
#include "trace/metrics.hpp"
#include "util/assert.hpp"

namespace rcons::analysis {

namespace {

using bounds_detail::PairWitness;

std::string edge_to_string(int v) {
  return v >= kLevelUnbounded ? "inf" : std::to_string(v);
}

/// Tightens a lower edge. First-writer-wins on ties keeps the provenance
/// of the lowest-numbered rule, making reports deterministic.
void raise_lo(LevelBracket& b, int lo, const char* rule) {
  if (lo > b.lo) {
    b.lo = lo;
    b.lo_by = rule;
  }
  RCONS_CHECK(b.lo <= b.hi);  // a violation means an unsound rule
}

void lower_hi(LevelBracket& b, int hi, const char* rule) {
  if (hi < b.hi) {
    b.hi = hi;
    b.hi_by = rule;
  }
  RCONS_CHECK(b.lo <= b.hi);
}

std::string witness_text(const spec::ObjectType& t, const PairWitness& w) {
  return "u='" + t.value_name(w.u) + "', a='" + t.op_name(w.a) + "', b='" +
         t.op_name(w.b) + "'";
}

}  // namespace

std::string LevelBracket::to_string() const {
  return "[" + edge_to_string(lo) + ", " + edge_to_string(hi) + "]";
}

std::string LevelBracket::render_json() const {
  const auto edge = [](int v) {
    return v >= kLevelUnbounded ? std::string("\"inf\"") : std::to_string(v);
  };
  return "{\"lo\":" + edge(lo) + ",\"hi\":" + edge(hi) + ",\"lo_by\":\"" +
         json_escape(lo_by) + "\",\"hi_by\":\"" + json_escape(hi_by) + "\"}";
}

std::string BoundsReport::render_json() const {
  std::set<std::string> rules;
  for (const Diagnostic& d : findings.diagnostics()) rules.insert(d.rule);
  std::string rule_list;
  for (const std::string& r : rules) {
    if (!rule_list.empty()) rule_list += ',';
    rule_list += "\"" + r + "\"";
  }
  return "{\"cons\":" + discerning.render_json() +
         ",\"rcons\":" + recording.render_json() + ",\"rules\":[" +
         rule_list + "],\"ops_removed\":" + std::to_string(ops_removed) + "}";
}

std::string BoundsReport::describe() const {
  const auto edge_by = [](const LevelBracket& b) {
    std::string by;
    if (!b.lo_by.empty()) by += " lo " + b.lo_by;
    if (!b.hi_by.empty()) by += (by.empty() ? " " : ", ") + ("hi " + b.hi_by);
    return by.empty() ? std::string() : " (" + by.substr(1) + ")";
  };
  std::set<std::string> rules;
  for (const Diagnostic& d : findings.diagnostics()) rules.insert(d.rule);
  std::string fired;
  for (const std::string& r : rules) {
    if (!fired.empty()) fired += ' ';
    fired += r;
  }
  std::string out = "  static bounds:    cons in " + discerning.to_string() +
                    edge_by(discerning) + ", rcons in " +
                    recording.to_string() + edge_by(recording) + "\n";
  out += "  bounds rules:     " + (fired.empty() ? "(none fired)" : fired);
  if (ops_removed > 0) {
    out += "; quotient removes " + std::to_string(ops_removed) + " op" +
           (ops_removed == 1 ? "" : "s");
  }
  out += "\n";
  return out;
}

BoundsReport analyze_static_bounds(const spec::ObjectType& type,
                                   const std::string& subject) {
  BoundsReport r;
  r.type_name = type.name();
  const std::string subj = subject.empty() ? type.name() : subject;
  trace::metrics().add("bounds.analyses", 1);

  // SA001: ops that can neither change nor observe the value. Dropping
  // one preserves both levels exactly: in any witness, a schedule where
  // the op ran is value- and response-indistinguishable from one where its
  // process ran first, so its R/U entries collide across teams anyway.
  const int op_count = type.op_count();
  std::vector<char> drop(static_cast<std::size_t>(op_count), 0);
  for (spec::OpId o = 0; o < op_count; ++o) {
    bool dead = true;
    const spec::ResponseId fixed = type.apply(0, o).response;
    for (spec::ValueId v = 0; v < type.value_count() && dead; ++v) {
      const spec::Effect e = type.apply(v, o);
      dead = e.next_value == v && e.response == fixed;
    }
    if (dead) {
      drop[static_cast<std::size_t>(o)] = 1;
      r.findings.add(make_diagnostic(
          kRuleBoundsObliviousOp, subj, "op '" + type.op_name(o) + "'",
          "operation is a constant-response self-loop ('" +
              type.response_name(fixed) +
              "') everywhere: it can neither change nor observe the value, "
              "so no discerning or recording witness needs it",
          "the exact deciders run on the bounds quotient without this op"));
    }
  }

  // SA002: ops with identical transition rows are interchangeable inside
  // any witness; keeping one per row preserves both levels exactly.
  for (spec::OpId a = 0; a < op_count; ++a) {
    if (drop[static_cast<std::size_t>(a)]) continue;
    for (spec::OpId b = a + 1; b < op_count; ++b) {
      if (drop[static_cast<std::size_t>(b)]) continue;
      bool same = true;
      for (spec::ValueId v = 0; v < type.value_count() && same; ++v) {
        same = type.apply(v, a) == type.apply(v, b);
      }
      if (same) {
        drop[static_cast<std::size_t>(b)] = 1;
        r.findings.add(make_diagnostic(
            kRuleBoundsDuplicateOp, subj, "op '" + type.op_name(b) + "'",
            "transition rows are identical to op '" + type.op_name(a) +
                "': the two are interchangeable in any witness",
            "the exact deciders run on the bounds quotient without this "
            "op"));
      }
    }
  }

  const int removed = static_cast<int>(
      std::count(drop.begin(), drop.end(), static_cast<char>(1)));
  if (removed > 0 && removed < op_count) {
    spec::TypeBuilder builder(type.name());
    for (spec::ValueId v = 0; v < type.value_count(); ++v) {
      builder.value(type.value_name(v));
    }
    for (spec::OpId o = 0; o < op_count; ++o) {
      if (!drop[static_cast<std::size_t>(o)]) builder.op(type.op_name(o));
    }
    for (spec::ValueId v = 0; v < type.value_count(); ++v) {
      for (spec::OpId o = 0; o < op_count; ++o) {
        if (drop[static_cast<std::size_t>(o)]) continue;
        const spec::Effect e = type.apply(v, o);
        builder.on(type.value_name(v), type.op_name(o))
            .then(type.value_name(e.next_value))
            .returns(type.response_name(e.response));
      }
    }
    r.quotient = builder.build();
    r.quotient_reduced = true;
    r.ops_removed = removed;
    trace::metrics().add("bounds.quotient_ops_removed", removed);
  } else {
    // All ops oblivious (SA003 will bracket the type to [1, 1] anyway) or
    // nothing to remove: analyze the original.
    r.quotient = type;
  }
  const spec::ObjectType& q = r.quotient;

  // SA003: a type whose every op preserves every value keeps the object
  // at its initial value forever: U0 = U1 = {u} and each process's pair
  // (fixed response, u) lands in both teams' R-sets, so neither condition
  // holds at any n >= 2.
  if (bounds_detail::all_value_preserving(q)) {
    lower_hi(r.discerning, 1, kRuleBoundsReadOnlyType);
    lower_hi(r.recording, 1, kRuleBoundsReadOnlyType);
    r.findings.add(make_diagnostic(
        kRuleBoundsReadOnlyType, subj, "type",
        "every operation is value-preserving: the object never leaves its "
        "initial value, so no team assignment can separate R- or U-sets; "
        "cons = rcons = 1",
        "a read-only type has consensus number 1 at every level"));
  }

  // SA004: full (state + response) commutation of every ordered pair makes
  // the two orders of any cross-team pair indistinguishable in both the
  // final value and each process's response, so no n >= 2 is discerning.
  if (bounds_detail::all_pairs_fully_commute(q)) {
    lower_hi(r.discerning, 1, kRuleBoundsCommutativeType);
    r.findings.add(make_diagnostic(
        kRuleBoundsCommutativeType, subj, "type",
        "every ordered operation pair commutes in state and responses at "
        "every value: swapping the first two cross-team steps of any "
        "schedule changes nothing observable, so the type is not "
        "2-discerning and cons = 1",
        "Herlihy-style commutation argument, evaluated on the delta table"));
  }

  // SA005: commute-or-overwrite. For recording, the first two cross-team
  // steps yield a common value in both U-sets at every n, so rcons = 1.
  // For discerning with n >= 3, the state a third process observes is
  // reproducible from a schedule led by the opposite team, so cons <= 2.
  if (bounds_detail::all_pairs_commute_or_overwrite(q)) {
    lower_hi(r.discerning, 2, kRuleBoundsInterferenceBounded);
    lower_hi(r.recording, 1, kRuleBoundsInterferenceBounded);
    r.findings.add(make_diagnostic(
        kRuleBoundsInterferenceBounded, subj, "type",
        "every operation pair commutes in state or overwrites at every "
        "value: the first two cross-team steps always produce a value "
        "common to both U-sets (rcons = 1), and any third process sees a "
        "state reachable under the opposite leading team (cons <= 2)",
        "commute-or-overwrite interference classification"));
  }

  // SA006: exact static evaluation of both conditions at n = 2 over the
  // four one-shot schedules of a pair witness. A hit certifies lo = 2;
  // a miss is a proof of failure at n = 2, so hi = 1 by monotonicity.
  const auto disc_pair = bounds_detail::find_discerning_pair(q);
  const auto rec_pair = bounds_detail::find_recording_pair(q);
  if (disc_pair.has_value()) {
    raise_lo(r.discerning, 2, kRuleBoundsPairInterference);
  } else {
    lower_hi(r.discerning, 1, kRuleBoundsPairInterference);
  }
  if (rec_pair.has_value()) {
    raise_lo(r.recording, 2, kRuleBoundsPairInterference);
  } else {
    lower_hi(r.recording, 1, kRuleBoundsPairInterference);
  }
  if (disc_pair.has_value() || rec_pair.has_value()) {
    std::string message = "interfering pair found:";
    if (disc_pair.has_value()) {
      message +=
          " (" + witness_text(q, *disc_pair) + ") is a 2-discerning witness";
    }
    if (rec_pair.has_value()) {
      message += std::string(disc_pair.has_value() ? ";" : "") + " (" +
                 witness_text(q, *rec_pair) + ") is a 2-recording witness";
    }
    r.findings.add(make_diagnostic(
        kRuleBoundsPairInterference, subj, "type", message,
        "the level-2 verdicts are decided statically either way"));
  }

  // SA007: a pair driving u to two distinct values each fixed by both ops
  // is a witness at EVERY n: all-a vs all-b teams pin U0 = {x}, U1 = {y}
  // (disjoint, and u in neither, so v-hiding condition (2) is vacuous),
  // and every R-pair carries x or y in its value component.
  if (const auto w = bounds_detail::find_sticky_pair(q)) {
    raise_lo(r.discerning, kLevelUnbounded, kRuleBoundsStickyPair);
    raise_lo(r.recording, kLevelUnbounded, kRuleBoundsStickyPair);
    r.findings.add(make_diagnostic(
        kRuleBoundsStickyPair, subj, "value '" + q.value_name(w->u) + "'",
        "sticky pair (" + witness_text(q, *w) + "): '" + q.op_name(w->a) +
            "' and '" + q.op_name(w->b) +
            "' reach distinct values that both ops then fix, so assigning "
            "one op per team is an n-discerning and n-recording witness "
            "for every n",
        "the exact scans are skipped: both levels are cap-limited"));
  }

  // SA008: same argument with absorbing regions instead of absorbing
  // values: if the {a, b}-closures of delta(u,a) and delta(u,b) are
  // disjoint and exclude u, every schedule's value stays on its leading
  // team's side, at every n.
  if (const auto w = bounds_detail::find_divergent_closure_pair(q)) {
    raise_lo(r.discerning, kLevelUnbounded, kRuleBoundsDivergentClosure);
    raise_lo(r.recording, kLevelUnbounded, kRuleBoundsDivergentClosure);
    r.findings.add(make_diagnostic(
        kRuleBoundsDivergentClosure, subj,
        "value '" + q.value_name(w->u) + "'",
        "divergent closure pair (" + witness_text(q, *w) +
            "): the {a, b}-closures of the two post-step values are "
            "disjoint and exclude the initial value, so one-op-per-team "
            "is an n-discerning and n-recording witness for every n",
        "generalizes the sticky-pair argument to absorbing regions"));
  }

  // Dominance closure (DESIGN.md §11): a recording witness is a
  // discerning witness for the same assignment (node values lie in the
  // leading team's U-set, and the U-sets are disjoint), so the discerning
  // floor inherits the recording floor and the recording ceiling inherits
  // the discerning ceiling. With SA001-SA008 as defined this is already
  // closed; kept so future rules cannot leave an unclosed report.
  if (r.recording.lo > r.discerning.lo) {
    r.discerning.lo = r.recording.lo;
    r.discerning.lo_by = r.recording.lo_by;
  }
  if (r.discerning.hi < r.recording.hi) {
    r.recording.hi = r.discerning.hi;
    r.recording.hi_by = r.discerning.hi_by;
  }
  RCONS_CHECK(r.discerning.lo <= r.discerning.hi);
  RCONS_CHECK(r.recording.lo <= r.recording.hi);

  trace::metrics().add("bounds.rules_fired",
                       static_cast<std::int64_t>(
                           r.findings.diagnostics().size()));
  r.findings.canonicalize();
  return r;
}

}  // namespace rcons::analysis
