#include "analysis/static_bounds/pair_scans.hpp"

#include <vector>

namespace rcons::analysis::bounds_detail {

namespace {

spec::ValueId step(const spec::ObjectType& t, spec::ValueId v, spec::OpId o) {
  return t.apply(v, o).next_value;
}

/// Values reachable from `from` (inclusive) using only ops `a` and `b`.
std::vector<char> closure(const spec::ObjectType& t, spec::ValueId from,
                          spec::OpId a, spec::OpId b) {
  std::vector<char> in(static_cast<std::size_t>(t.value_count()), 0);
  std::vector<spec::ValueId> frontier{from};
  in[static_cast<std::size_t>(from)] = 1;
  while (!frontier.empty()) {
    const spec::ValueId v = frontier.back();
    frontier.pop_back();
    for (const spec::OpId o : {a, b}) {
      const spec::ValueId next = step(t, v, o);
      if (!in[static_cast<std::size_t>(next)]) {
        in[static_cast<std::size_t>(next)] = 1;
        frontier.push_back(next);
      }
    }
  }
  return in;
}

}  // namespace

bool all_value_preserving(const spec::ObjectType& t) {
  for (spec::ValueId v = 0; v < t.value_count(); ++v) {
    for (spec::OpId o = 0; o < t.op_count(); ++o) {
      if (step(t, v, o) != v) return false;
    }
  }
  return true;
}

bool all_pairs_fully_commute(const spec::ObjectType& t) {
  // The three equalities are symmetric under swapping (a, b), so scanning
  // unordered pairs (including a == b) covers every ordered pair.
  for (spec::OpId a = 0; a < t.op_count(); ++a) {
    for (spec::OpId b = a; b < t.op_count(); ++b) {
      for (spec::ValueId v = 0; v < t.value_count(); ++v) {
        const spec::Effect ea = t.apply(v, a);
        const spec::Effect eab = t.apply(ea.next_value, b);
        const spec::Effect eb = t.apply(v, b);
        const spec::Effect eba = t.apply(eb.next_value, a);
        if (eab.next_value != eba.next_value) return false;
        if (ea.response != eba.response) return false;
        if (eb.response != eab.response) return false;
      }
    }
  }
  return true;
}

bool all_pairs_commute_or_overwrite(const spec::ObjectType& t) {
  for (spec::OpId a = 0; a < t.op_count(); ++a) {
    for (spec::OpId b = a; b < t.op_count(); ++b) {
      for (spec::ValueId v = 0; v < t.value_count(); ++v) {
        const spec::ValueId va = step(t, v, a);
        const spec::ValueId vb = step(t, v, b);
        const spec::ValueId vab = step(t, va, b);
        const spec::ValueId vba = step(t, vb, a);
        const bool commute = vab == vba;
        const bool b_overwrites_a = vab == vb;
        const bool a_overwrites_b = vba == va;
        if (!commute && !b_overwrites_a && !a_overwrites_b) return false;
      }
    }
  }
  return true;
}

std::optional<PairWitness> find_discerning_pair(const spec::ObjectType& t) {
  // n = 2, process p0 running op a on team 0, p1 running b on team 1. The
  // one-shot schedule tree is {(p0), (p0 p1), (p1), (p1 p0)}; the DFS
  // records (response, value) pairs at every node, giving
  //   R00 = {(ra, va), (ra, vab)}      R10 = {(resp(vb, a), vba)}
  //   R01 = {(resp(va, b), vab)}       R11 = {(rb, vb), (rb, vba)}
  // and the witness condition is R00 ^ R10 = R01 ^ R11 = empty.
  for (spec::ValueId u = 0; u < t.value_count(); ++u) {
    for (spec::OpId a = 0; a < t.op_count(); ++a) {
      for (spec::OpId b = 0; b < t.op_count(); ++b) {
        const spec::Effect ea = t.apply(u, a);
        const spec::Effect eb = t.apply(u, b);
        const spec::Effect eab = t.apply(ea.next_value, b);
        const spec::Effect eba = t.apply(eb.next_value, a);
        const spec::ValueId va = ea.next_value;
        const spec::ValueId vb = eb.next_value;
        const spec::ValueId vab = eab.next_value;
        const spec::ValueId vba = eba.next_value;
        const bool p0_collides =
            eba.response == ea.response && (vba == va || vba == vab);
        const bool p1_collides =
            eab.response == eb.response && (vab == vb || vab == vba);
        if (!p0_collides && !p1_collides) return PairWitness{u, a, b};
      }
    }
  }
  return std::nullopt;
}

std::optional<PairWitness> find_recording_pair(const spec::ObjectType& t) {
  // Same schedule tree, values only: U0 = {va, vab}, U1 = {vb, vba}; the
  // v-hiding condition (2) is vacuous at n = 2 (both teams are singletons).
  for (spec::ValueId u = 0; u < t.value_count(); ++u) {
    for (spec::OpId a = 0; a < t.op_count(); ++a) {
      for (spec::OpId b = 0; b < t.op_count(); ++b) {
        const spec::ValueId va = step(t, u, a);
        const spec::ValueId vb = step(t, u, b);
        const spec::ValueId vab = step(t, va, b);
        const spec::ValueId vba = step(t, vb, a);
        if (va != vb && va != vba && vab != vb && vab != vba) {
          return PairWitness{u, a, b};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<PairWitness> find_sticky_pair(const spec::ObjectType& t) {
  for (spec::ValueId u = 0; u < t.value_count(); ++u) {
    for (spec::OpId a = 0; a < t.op_count(); ++a) {
      for (spec::OpId b = a + 1; b < t.op_count(); ++b) {
        const spec::ValueId x = step(t, u, a);
        const spec::ValueId y = step(t, u, b);
        if (x == y || u == x || u == y) continue;
        if (step(t, x, a) == x && step(t, x, b) == x &&
            step(t, y, a) == y && step(t, y, b) == y) {
          return PairWitness{u, a, b};
        }
      }
    }
  }
  return std::nullopt;
}

std::optional<PairWitness> find_divergent_closure_pair(
    const spec::ObjectType& t) {
  for (spec::ValueId u = 0; u < t.value_count(); ++u) {
    for (spec::OpId a = 0; a < t.op_count(); ++a) {
      for (spec::OpId b = a + 1; b < t.op_count(); ++b) {
        const spec::ValueId sa = step(t, u, a);
        const spec::ValueId sb = step(t, u, b);
        if (sa == sb) continue;
        const std::vector<char> in_a = closure(t, sa, a, b);
        if (in_a[static_cast<std::size_t>(u)] ||
            in_a[static_cast<std::size_t>(sb)]) {
          continue;
        }
        const std::vector<char> in_b = closure(t, sb, a, b);
        if (in_b[static_cast<std::size_t>(u)]) continue;
        bool disjoint = true;
        for (spec::ValueId v = 0; v < t.value_count() && disjoint; ++v) {
          disjoint = !(in_a[static_cast<std::size_t>(v)] &&
                       in_b[static_cast<std::size_t>(v)]);
        }
        if (disjoint) return PairWitness{u, a, b};
      }
    }
  }
  return std::nullopt;
}

}  // namespace rcons::analysis::bounds_detail
