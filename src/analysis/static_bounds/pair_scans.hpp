// Internal pair-structure scans backing SA003-SA008 (static_bounds.hpp).
// Each scan is a pure function of the delta table; witnesses are returned
// in (u, a, b) lexicographic order so reports are deterministic.
#pragma once

#include <optional>

#include "spec/object_type.hpp"

namespace rcons::analysis::bounds_detail {

/// A witness triple: initial value `u`, operations `a` and `b`.
struct PairWitness {
  spec::ValueId u = 0;
  spec::OpId a = 0;
  spec::OpId b = 0;
};

/// SA003: every operation preserves every value.
bool all_value_preserving(const spec::ObjectType& t);

/// SA004: every ordered operation pair commutes in state AND responses at
/// every value (for (a, a) this requires a's response to be stable across
/// its own application — test&set fails it, a blind counter passes).
bool all_pairs_fully_commute(const spec::ObjectType& t);

/// SA005: every unordered operation pair, at every value, commutes in
/// state or one op overwrites the other (delta(v, ab) == delta(v, b)).
bool all_pairs_commute_or_overwrite(const spec::ObjectType& t);

/// SA006: first (u, a, b) that is a 2-discerning witness — both processes'
/// R-sets over the four one-shot schedules are team-disjoint — or nullopt,
/// which certifies the type is NOT 2-discerning (the scan is exact).
std::optional<PairWitness> find_discerning_pair(const spec::ObjectType& t);

/// SA006: first (u, a, b) that is a 2-recording witness — the values after
/// a, ab vs b, ba are disjoint — or nullopt (exact: not 2-recording).
std::optional<PairWitness> find_recording_pair(const spec::ObjectType& t);

/// SA007: first (u, a, b) with x = delta(u,a) != y = delta(u,b), u not in
/// {x, y}, and both x and y fixed points of both a and b.
std::optional<PairWitness> find_sticky_pair(const spec::ObjectType& t);

/// SA008: first (u, a, b) whose post-step closures under {a, b} are
/// disjoint and exclude u (generalizes SA007 from absorbing values to
/// absorbing regions).
std::optional<PairWitness> find_divergent_closure_pair(
    const spec::ObjectType& t);

}  // namespace rcons::analysis::bounds_detail
