// Umbrella header for the rcons static-analysis layer (rcons::analysis).
//
// The layer has three parts:
//   * diagnostic.hpp — Diagnostic / Report, text + JSON rendering;
//   * rules.hpp      — the rule registry (stable IDs, severities, the
//                      paper precondition each rule guards);
//   * type_lint.hpp / protocol_lint.hpp — the TS/PL analyzer front ends;
//   * recovery_audit.hpp — the RC crash-recovery soundness audit over the
//                      shadow-persistency semantics.
//
// See DESIGN.md ("Static analysis") for the full rule catalog and
// README.md for `rcons_cli lint` usage.
#pragma once

#include "analysis/diagnostic.hpp"     // IWYU pragma: export
#include "analysis/protocol_lint.hpp"  // IWYU pragma: export
#include "analysis/recovery_audit.hpp" // IWYU pragma: export
#include "analysis/rules.hpp"          // IWYU pragma: export
#include "analysis/type_lint.hpp"      // IWYU pragma: export
