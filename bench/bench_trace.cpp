// Tracing overhead — the cost of the RCONS_TRACE() macro in the three
// regimes that matter:
//
//   1. sink off (the default): one thread-local load + branch per event
//      site, argument expressions never evaluated. This is the price every
//      ordinary scan pays for having tracing compiled in, so it is the
//      number the "no measurable regression with tracing compiled out"
//      acceptance criterion compares against.
//   2. sink on: events land in a TraceBuffer (amortized push_back).
//   3. a full model-checker scan with and without a sink installed, which
//      is the end-to-end version of the same question.
//
// Under -DRCONS_TRACE=OFF regimes 1 and 2 collapse to pure loop overhead.
#include <benchmark/benchmark.h>

#include "algo/tas_racing.hpp"
#include "trace/metrics.hpp"
#include "trace/trace.hpp"
#include "valency/model_checker.hpp"

namespace {

using rcons::trace::Kind;
using rcons::trace::ScopedSink;
using rcons::trace::TraceBuffer;
using rcons::trace::TraceEvent;

TraceEvent make_step(int i) {
  TraceEvent ev;
  ev.kind = Kind::kStep;
  ev.pid = i & 1;
  ev.object = 0;
  ev.op = i & 3;
  ev.response = 0;
  ev.state_hash = static_cast<std::uint64_t>(i) * 0x9e3779b97f4a7c15ULL;
  return ev;
}

void BM_TraceMacroSinkOff(benchmark::State& state) {
  // No sink installed: the macro must not evaluate make_step().
  int i = 0;
  for (auto _ : state) {
    RCONS_TRACE(make_step(i));
    benchmark::DoNotOptimize(i);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceMacroSinkOff);

void BM_TraceMacroSinkOn(benchmark::State& state) {
  TraceBuffer buffer;
  ScopedSink scope(&buffer);
  int i = 0;
  for (auto _ : state) {
    RCONS_TRACE(make_step(i));
    ++i;
    if (buffer.size() >= (1u << 20)) buffer.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceMacroSinkOn);

void BM_MetricsCounterAdd(benchmark::State& state) {
  auto& m = rcons::trace::metrics();
  m.reset();
  for (auto _ : state) {
    m.add("bench.counter", 1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsCounterAdd);

// End-to-end: the same exhaustive scan with and without a sink. The
// delta between these two is the true cost of capturing a full event
// stream; the delta between SinkOff here and the same scan on a
// -DRCONS_TRACE=OFF build is the cost of having tracing compiled in.
void BM_SafetyScanSinkOff(benchmark::State& state) {
  rcons::algo::TasRacingConsensus protocol;
  rcons::valency::SafetyOptions options;
  options.crash_mode = rcons::valency::CrashMode::kIndividual;
  for (auto _ : state) {
    auto r = rcons::valency::check_safety_all_inputs(protocol, options);
    benchmark::DoNotOptimize(r.states_visited);
  }
}
BENCHMARK(BM_SafetyScanSinkOff);

void BM_SafetyScanSinkOn(benchmark::State& state) {
  rcons::algo::TasRacingConsensus protocol;
  rcons::valency::SafetyOptions options;
  options.crash_mode = rcons::valency::CrashMode::kIndividual;
  for (auto _ : state) {
    TraceBuffer buffer;
    ScopedSink scope(&buffer);
    auto r = rcons::valency::check_safety_all_inputs(protocol, options);
    benchmark::DoNotOptimize(r.states_visited);
    benchmark::DoNotOptimize(buffer.size());
  }
}
BENCHMARK(BM_SafetyScanSinkOn);

}  // namespace

BENCHMARK_MAIN();
