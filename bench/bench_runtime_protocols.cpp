// Experiment E7 — live-runtime behaviour under crash injection: decisions
// per second, steps and crashes per decision, swept over the crash
// probability, plus the object layer's contended throughput and the cost
// of the linearizability checker. Prints the audit table (the runtime
// counterpart of E4's exhaustive verdicts) before benchmarking.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <thread>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "runtime/history.hpp"
#include "runtime/live_object.hpp"
#include "runtime/live_run.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/table.hpp"

namespace {

void print_audit_table() {
  rcons::Table table({"protocol", "crash prob", "rounds", "crashes",
                      "steps/decision", "agr viol"});
  rcons::algo::CasConsensus cas3(3);
  rcons::algo::TnnRecoverableConsensus tnn(5, 2, 2);
  rcons::algo::RecordingConsensus recording(rcons::spec::make_cas(3), 3);
  rcons::algo::TasRacingConsensus racing;
  const std::pair<const char*, rcons::exec::Protocol*> protocols[] = {
      {"cas_consensus(3)", &cas3},
      {"tnn_recoverable(5,2)", &tnn},
      {"recording(cas3,3)", &recording},
      {"tas_racing", &racing},
  };
  for (const auto& [name, protocol] : protocols) {
    for (const double p : {0.0, 0.1, 0.3}) {
      rcons::runtime::LiveRunOptions options;
      options.rounds = 300;
      options.crash_prob = p;
      options.seed = 99;
      const auto r = rcons::runtime::run_live_audit(*protocol, options);
      table.add_row({name, std::to_string(p).substr(0, 4),
                     std::to_string(r.rounds),
                     std::to_string(r.total_crashes),
                     r.total_decisions
                         ? std::to_string(r.total_steps / r.total_decisions)
                         : "-",
                     std::to_string(r.agreement_violations)});
    }
    table.add_separator();
  }
  std::printf("E7: live audits (expected shape: zeros everywhere except "
              "tas_racing at crash prob > 0)\n%s\n",
              table.render().c_str());
}

void BM_LiveAudit(benchmark::State& state, rcons::exec::Protocol* protocol,
                  double crash_prob) {
  rcons::runtime::LiveRunOptions options;
  options.rounds = 50;
  options.crash_prob = crash_prob;
  std::uint64_t decisions = 0;
  for (auto _ : state) {
    options.seed += 1;  // fresh crash pattern per iteration
    const auto r = rcons::runtime::run_live_audit(*protocol, options);
    decisions += r.total_decisions;
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(decisions));
}

void BM_LiveObjectContended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const rcons::spec::ObjectType cas = rcons::spec::make_cas(3);
  const rcons::spec::OpId op = *cas.find_op("cas_0_1");
  const rcons::spec::OpId undo = *cas.find_op("cas_1_0");
  for (auto _ : state) {
    rcons::runtime::PersistentArena arena;
    rcons::runtime::LiveObject obj(cas, 0, arena);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&] {
        for (int i = 0; i < 2000; ++i) {
          obj.apply(i % 2 == 0 ? op : undo);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * 2000);
}

void BM_LinearizabilityCheck(benchmark::State& state) {
  const int ops_per_thread = static_cast<int>(state.range(0));
  const rcons::spec::ObjectType tnn = rcons::spec::make_tnn(6, 3);
  // Record one contended history, then measure the checker alone.
  rcons::runtime::PersistentArena arena;
  rcons::runtime::LiveObject obj(tnn, *tnn.find_value("s"), arena);
  rcons::runtime::HistoryRecorder recorder;
  {
    std::vector<std::thread> pool;
    for (int t = 0; t < 4; ++t) {
      pool.emplace_back([&, t] {
        const rcons::spec::OpId ops[3] = {*tnn.find_op("op_0"),
                                          *tnn.find_op("op_1"),
                                          *tnn.find_op("op_R")};
        for (int i = 0; i < ops_per_thread; ++i) {
          obj.apply_recorded(ops[(t + i) % 3], t, recorder);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  const auto history = recorder.take();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::runtime::is_linearizable(
        tnn, *tnn.find_value("s"), history));
  }
  state.counters["ops"] = static_cast<double>(history.size());
}

rcons::algo::CasConsensus g_cas3(3);
rcons::algo::TnnRecoverableConsensus g_tnn(5, 2, 2);
rcons::algo::RecordingConsensus g_recording(rcons::spec::make_cas(3), 3);

}  // namespace

BENCHMARK_CAPTURE(BM_LiveAudit, cas3_p00, &g_cas3, 0.0);
BENCHMARK_CAPTURE(BM_LiveAudit, cas3_p30, &g_cas3, 0.3);
BENCHMARK_CAPTURE(BM_LiveAudit, tnn52_p30, &g_tnn, 0.3);
BENCHMARK_CAPTURE(BM_LiveAudit, recording_cas3_p30, &g_recording, 0.3);
BENCHMARK(BM_LiveObjectContended)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_LinearizabilityCheck)->Arg(3)->Arg(5);

int main(int argc, char** argv) {
  print_audit_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
