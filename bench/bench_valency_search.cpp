// Experiment E3 — cost of the valency machinery: critical-execution search
// and budgeted reachability, swept over the budget multiplier z and the
// credit saturation cap. Prints the resulting critical schedules (the
// Figure 1/2-shaped artifacts) before benchmarking.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "algo/cas_consensus.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/event.hpp"
#include "util/table.hpp"
#include "valency/critical.hpp"
#include "valency/valence.hpp"

namespace {

using rcons::valency::CriticalSearchOptions;
using rcons::valency::find_critical_execution;

void print_critical_table() {
  rcons::Table table(
      {"protocol", "z", "critical schedule", "teams", "class"});
  for (int z = 1; z <= 3; ++z) {
    rcons::algo::TnnRecoverableConsensus protocol(4, 2, 2);
    CriticalSearchOptions options;
    options.z = z;
    options.credit_cap = 4;
    const auto r = find_critical_execution(protocol, {0, 1}, options);
    if (!r.has_value()) {
      table.add_row({protocol.name(), std::to_string(z), "(none)", "", ""});
      continue;
    }
    std::string teams;
    for (std::size_t i = 0; i < r->team_of.size(); ++i) {
      teams += "p" + std::to_string(i) + ":" + std::to_string(r->team_of[i]) +
               " ";
    }
    table.add_row({protocol.name(), std::to_string(z),
                   rcons::exec::schedule_to_string(r->schedule), teams,
                   r->config_class.recording ? "n-recording" : "other"});
  }
  std::printf("E3: critical executions of the T_{4,2} recoverable protocol "
              "under E_z*\n%s\n",
              table.render().c_str());
}

void BM_CriticalSearch_Tnn(benchmark::State& state) {
  const int z = static_cast<int>(state.range(0));
  const int cap = static_cast<int>(state.range(1));
  for (auto _ : state) {
    rcons::algo::TnnRecoverableConsensus protocol(4, 2, 2);
    CriticalSearchOptions options;
    options.z = z;
    options.credit_cap = cap;
    benchmark::DoNotOptimize(
        find_critical_execution(protocol, {0, 1}, options));
  }
}

void BM_CriticalSearch_Cas(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<int> inputs(static_cast<std::size_t>(n), 1);
  inputs[0] = 0;
  for (auto _ : state) {
    rcons::algo::CasConsensus protocol(n);
    benchmark::DoNotOptimize(find_critical_execution(protocol, inputs));
  }
}

void BM_ReachableDecisions(benchmark::State& state) {
  const int cap = static_cast<int>(state.range(0));
  rcons::algo::TnnRecoverableConsensus protocol(5, 3, 3);
  rcons::valency::ValencyAnalyzer analyzer(protocol, 1, cap);
  const auto initial = analyzer.initial_state(
      rcons::exec::Config::initial(protocol, {0, 1, 1}));
  for (auto _ : state) {
    // Fresh analyzer state each iteration would re-explore; here we measure
    // the memoized steady state after the first query.
    benchmark::DoNotOptimize(analyzer.reachable_decisions(initial));
  }
  state.counters["memo"] = static_cast<double>(analyzer.memo_size());
}

}  // namespace

BENCHMARK(BM_CriticalSearch_Tnn)
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({1, 8})
    ->Args({2, 8});
BENCHMARK(BM_CriticalSearch_Cas)->Arg(2)->Arg(3)->Arg(4);
BENCHMARK(BM_ReachableDecisions)->Arg(2)->Arg(4)->Arg(6);

int main(int argc, char** argv) {
  print_critical_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
