// Experiment E2 — Figure 3's type as an executable artifact.
//
// Prints the exact T_{5,2} state machine (compare against the paper's
// Figure 3) and measures the sequential-specification layer: single
// transitions, full one-shot schedules, and serialization round trips.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"

namespace {

using rcons::spec::ObjectType;

void BM_SingleTransition(benchmark::State& state, const ObjectType& type) {
  const int ops = type.op_count();
  rcons::spec::ValueId v = 0;
  int op = 0;
  for (auto _ : state) {
    const auto& e = type.apply(v, op);
    v = e.next_value;
    op = (op + 1) % ops;
    benchmark::DoNotOptimize(v);
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_OneShotSchedule(benchmark::State& state, const ObjectType& type,
                        int length) {
  std::vector<rcons::spec::OpId> schedule;
  for (int i = 0; i < length; ++i) {
    schedule.push_back(i % (type.op_count() - 1));  // skip trailing read
  }
  std::vector<rcons::spec::ResponseId> responses;
  for (auto _ : state) {
    benchmark::DoNotOptimize(type.apply_trace(0, schedule, responses));
  }
  state.SetItemsProcessed(state.iterations() * length);
}

void BM_SerializeRoundTrip(benchmark::State& state, const ObjectType& type) {
  for (auto _ : state) {
    const auto parsed =
        rcons::spec::parse_type(rcons::spec::serialize_type(type));
    benchmark::DoNotOptimize(parsed.ok());
  }
}

const ObjectType g_t52 = rcons::spec::make_tnn(5, 2);
const ObjectType g_t83 = rcons::spec::make_tnn(8, 3);
const ObjectType g_cas3 = rcons::spec::make_cas(3);
const ObjectType g_x4 = rcons::spec::make_xn(4);

}  // namespace

BENCHMARK_CAPTURE(BM_SingleTransition, t52, g_t52);
BENCHMARK_CAPTURE(BM_SingleTransition, t83, g_t83);
BENCHMARK_CAPTURE(BM_SingleTransition, cas3, g_cas3);
BENCHMARK_CAPTURE(BM_SingleTransition, x4, g_x4);
BENCHMARK_CAPTURE(BM_OneShotSchedule, t52_len4, g_t52, 4);
BENCHMARK_CAPTURE(BM_OneShotSchedule, t52_len8, g_t52, 8);
BENCHMARK_CAPTURE(BM_OneShotSchedule, t83_len8, g_t83, 8);
BENCHMARK_CAPTURE(BM_SerializeRoundTrip, t52, g_t52);
BENCHMARK_CAPTURE(BM_SerializeRoundTrip, x4, g_x4);

int main(int argc, char** argv) {
  std::printf("E2: the state machine of T_{5,2} (paper Figure 3)\n%s\n",
              g_t52.describe().c_str());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
