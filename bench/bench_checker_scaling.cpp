// Experiment E8 — cost of DECIDING the hierarchy, and the two ablations
// from DESIGN.md:
//   (1) symmetry reduction: canonical (team, op)-multiset enumeration vs
//       the naive partition x op-vector enumeration;
//   (2) shared-prefix schedule evaluation: the |S(P)| tree grows as
//       sum_k C(n,k) k! — the printed table shows the growth and the per-
//       level node counts actually visited.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "codegen/registry.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "sched/one_shot.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/table.hpp"

namespace {

using rcons::spec::ObjectType;

void print_scaling_table() {
  rcons::Table growth({"n", "|S(P)|", "tas disc assignments (sym)",
                       "tas disc assignments (naive)", "sym speedup"});
  for (int n = 2; n <= 6; ++n) {
    const ObjectType tas = rcons::spec::make_test_and_set();
    const auto sym = rcons::hierarchy::check_discerning(tas, n, true);
    const auto naive = rcons::hierarchy::check_discerning(tas, n, false);
    growth.add_row(
        {std::to_string(n),
         std::to_string(rcons::sched::one_shot_count(n)),
         std::to_string(sym.stats.assignments_tried),
         std::to_string(naive.stats.assignments_tried),
         std::to_string(naive.stats.assignments_tried /
                        std::max<std::uint64_t>(
                            1, sym.stats.assignments_tried))});
  }
  std::printf("E8: schedule-space growth and the symmetry-reduction "
              "ablation (test&set, exhaustive scans)\n%s\n",
              growth.render().c_str());

  rcons::Table nodes({"type", "n", "condition", "holds", "tree nodes"});
  const ObjectType cas3 = rcons::spec::make_cas(3);
  const ObjectType t52 = rcons::spec::make_tnn(5, 2);
  for (int n = 3; n <= 6; ++n) {
    const auto d = rcons::hierarchy::check_discerning(cas3, n);
    nodes.add_row({"cas3", std::to_string(n), "discerning",
                   d.holds ? "yes" : "no",
                   std::to_string(d.stats.schedule_nodes)});
    const auto r = rcons::hierarchy::check_recording(t52, n);
    nodes.add_row({"T_5_2", std::to_string(n), "recording",
                   r.holds ? "yes" : "no",
                   std::to_string(r.stats.schedule_nodes)});
  }
  std::printf("%s\n", nodes.render().c_str());
}

void BM_Discerning(benchmark::State& state, const ObjectType& type,
                   bool use_symmetry, int threads, bool aot = false) {
  const int n = static_cast<int>(state.range(0));
  std::unique_ptr<rcons::spec::PackedDelta> storage;
  const rcons::spec::PackedDelta* packed =
      aot ? rcons::codegen::packed_for(type, &storage) : nullptr;
  const auto mode = use_symmetry ? rcons::hierarchy::SymmetryMode::kCanonical
                                 : rcons::hierarchy::SymmetryMode::kNaive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcons::hierarchy::check_discerning(type, n, mode, threads, packed));
  }
  state.counters["threads"] = threads;
  state.counters["aot"] = aot ? 1 : 0;
}

void BM_Recording(benchmark::State& state, const ObjectType& type,
                  bool use_symmetry, int threads, bool aot = false) {
  const int n = static_cast<int>(state.range(0));
  std::unique_ptr<rcons::spec::PackedDelta> storage;
  const rcons::spec::PackedDelta* packed =
      aot ? rcons::codegen::packed_for(type, &storage) : nullptr;
  const auto mode = use_symmetry ? rcons::hierarchy::SymmetryMode::kCanonical
                                 : rcons::hierarchy::SymmetryMode::kNaive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcons::hierarchy::check_recording(type, n, mode, threads, packed));
  }
  state.counters["threads"] = threads;
  state.counters["aot"] = aot ? 1 : 0;
}

const ObjectType g_tas = rcons::spec::make_test_and_set();
const ObjectType g_cas3 = rcons::spec::make_cas(3);
const ObjectType g_x4 = rcons::spec::make_xn(4);
const ObjectType g_cons3 = rcons::spec::make_consensus_object(3);

// Ablation (3): the automorphism orbit filter on top of the canonical
// enumeration. Only full (failing) scans show the pruning; the 3-consensus
// object has a 6-element value-automorphism group, so its exhaustive n=6
// scan halves (1664 -> 848 assignments).
void BM_DiscerningMode(benchmark::State& state, const ObjectType& type,
                       rcons::hierarchy::SymmetryMode mode) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::check_discerning(type, n, mode));
  }
}

}  // namespace

// The exhaustive (condition fails => full scan) cells are the honest cost.
BENCHMARK_CAPTURE(BM_Discerning, tas_sym, g_tas, true, 1)
    ->Arg(3)->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Discerning, tas_naive, g_tas, false, 1)->Arg(3)->Arg(4);
BENCHMARK_CAPTURE(BM_Discerning, x4_sym, g_x4, true, 1)->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, tas_sym, g_tas, true, 1)
    ->Arg(3)->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, cas3_sym, g_cas3, true, 1)->Arg(3)->Arg(4);
BENCHMARK_CAPTURE(BM_Recording, x4_sym, g_x4, true, 1)->Arg(3)->Arg(4);

// Batched parallel-scan counterparts — identical witnesses and stats
// (tests/parallel_diff_test.cpp), the exhaustive scans just fan out.
BENCHMARK_CAPTURE(BM_Discerning, tas_sym_threads4, g_tas, true, 4)
    ->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, tas_sym_threads4, g_tas, true, 4)
    ->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, x4_sym_threads4, g_x4, true, 4)->Arg(3)->Arg(4);

// AOT-stepper counterparts of the exhaustive serial scans (identical
// witnesses and stats; tests/codegen_test.cpp pins profile-level parity).
BENCHMARK_CAPTURE(BM_Discerning, tas_sym_aot, g_tas, true, 1, true)
    ->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Discerning, x4_sym_aot, g_x4, true, 1, true)
    ->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, tas_sym_aot, g_tas, true, 1, true)
    ->Arg(4)->Arg(5);
BENCHMARK_CAPTURE(BM_Recording, x4_sym_aot, g_x4, true, 1, true)
    ->Arg(3)->Arg(4);

BENCHMARK_CAPTURE(BM_DiscerningMode, cons3_canonical, g_cons3,
                  rcons::hierarchy::SymmetryMode::kCanonical)
    ->Arg(5)->Arg(6);
BENCHMARK_CAPTURE(BM_DiscerningMode, cons3_automorphism, g_cons3,
                  rcons::hierarchy::SymmetryMode::kAutomorphism)
    ->Arg(5)->Arg(6);

int main(int argc, char** argv) {
  print_scaling_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
