// The rcons-hunt campaign as a measured workload: candidates walked (and
// canonicalized) per second by the box enumerator, the shard-filter +
// dedupe overhead on top of it, and the checkpoint serialize/parse
// round-trip that every snapshot pays. The profile step itself is
// measured by bench_hierarchy_table; this file isolates the campaign
// machinery wrapped around it.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/enumerate.hpp"

namespace {

using rcons::campaign::Box;
using rcons::campaign::Candidate;
using rcons::campaign::ProfileRecord;
using rcons::campaign::ShardCheckpoint;

/// Walk + canonicalize only — the per-candidate floor every shard pays
/// whether or not the candidate is its own.
void BM_WalkBox(benchmark::State& state) {
  Box box;
  box.max_values = static_cast<int>(state.range(0));
  box.max_ops = 1;
  box.max_responses = 2;
  std::uint64_t visited = 0;
  for (auto _ : state) {
    rcons::campaign::walk_box(box, 0, [&](const Candidate& c) {
      benchmark::DoNotOptimize(c.canon.hash);
      visited += 1;
      return true;
    });
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(visited));
}
BENCHMARK(BM_WalkBox)->Arg(2)->Arg(3);

/// Checkpoint snapshot cost as the record table grows: serialize, then
/// parse-and-verify the result (the resume path), per round.
void BM_CheckpointRoundTrip(benchmark::State& state) {
  ShardCheckpoint checkpoint;
  checkpoint.box = Box{3, 2, 2};
  checkpoint.max_n = 3;
  const auto records = static_cast<std::size_t>(state.range(0));
  for (std::size_t i = 0; i < records; ++i) {
    ProfileRecord r;
    r.id = {3, 2, 2, i};
    r.canonical_hash = 0x9e3779b97f4a7c15ULL * (i + 1);
    r.canonical_key = "v3o3r2:" + std::to_string(i) + ".0,1.1;";
    r.readable = true;
    r.discerning = {2, true};
    r.recording = {1, true};
    checkpoint.records.push_back(std::move(r));
  }
  checkpoint.cursor = records;
  for (auto _ : state) {
    const std::string bytes =
        rcons::campaign::serialize_checkpoint(checkpoint);
    benchmark::DoNotOptimize(bytes.size());
    ProfileRecord parsed;
    // Parse every record line back (load_checkpoint needs a file; the
    // record grammar is where the time goes).
    for (const ProfileRecord& r : checkpoint.records) {
      benchmark::DoNotOptimize(
          rcons::campaign::parse_record(rcons::campaign::render_record(r),
                                        &parsed));
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records) *
                          static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CheckpointRoundTrip)->Arg(64)->Arg(1024);

/// One full mini-shard through the real driver (profiling included), the
/// end-to-end number EXPERIMENTS.md E12 quotes per-candidate costs from.
void BM_MiniCampaign(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "rcons_bench_campaign";
  for (auto _ : state) {
    std::error_code ec;
    fs::remove_all(dir, ec);
    rcons::campaign::CampaignOptions options;
    options.box = Box{2, 1, 2};
    options.max_n = 2;
    options.checkpoint_dir = dir.string();
    const rcons::campaign::CampaignResult r =
        rcons::campaign::run_campaign(options);
    benchmark::DoNotOptimize(r.profiled);
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_MiniCampaign);

}  // namespace

BENCHMARK_MAIN();
