// Benchmarks for the recoverable universal construction and the
// recoverable locks: operations per second vs thread count, log replay
// cost vs log length, re-invocation (recovery) cost, and lock acquisition
// throughput under crash injection.
#include <benchmark/benchmark.h>

#include <thread>

#include "runtime/rlock.hpp"
#include "runtime/universal.hpp"
#include "spec/catalog.hpp"
#include "util/rng.hpp"

namespace {

void BM_UniversalSequentialApply(benchmark::State& state) {
  const int log_capacity = static_cast<int>(state.range(0));
  const rcons::spec::ObjectType faa =
      rcons::spec::make_fetch_and_add(1 << 16);
  const rcons::spec::OpId op = *faa.find_op("faa");
  std::uint64_t seq = 0;
  for (auto _ : state) {
    state.PauseTiming();
    rcons::runtime::PersistentArena arena;
    rcons::runtime::UniversalObject obj(faa, 0, arena, log_capacity);
    state.ResumeTiming();
    for (int i = 0; i < log_capacity; ++i) {
      benchmark::DoNotOptimize(obj.apply(op, 0, seq++));
    }
  }
  state.SetItemsProcessed(state.iterations() * log_capacity);
}

void BM_UniversalContended(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int ops_per_thread = 64;
  const rcons::spec::ObjectType faa =
      rcons::spec::make_fetch_and_add(1 << 16);
  const rcons::spec::OpId op = *faa.find_op("faa");
  for (auto _ : state) {
    rcons::runtime::PersistentArena arena;
    rcons::runtime::UniversalObject obj(faa, 0, arena,
                                        threads * ops_per_thread);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (std::uint64_t i = 0; i < ops_per_thread; ++i) {
          obj.apply(op, t, i);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * ops_per_thread);
}

void BM_UniversalRecoveryReinvocation(benchmark::State& state) {
  // Cost of the detectability path: re-applying an id already in the log.
  const int log_length = static_cast<int>(state.range(0));
  const rcons::spec::ObjectType faa =
      rcons::spec::make_fetch_and_add(1 << 16);
  const rcons::spec::OpId op = *faa.find_op("faa");
  rcons::runtime::PersistentArena arena;
  rcons::runtime::UniversalObject obj(faa, 0, arena, log_length + 1);
  for (int i = 0; i < log_length; ++i) {
    obj.apply(op, 0, static_cast<std::uint64_t>(i));
  }
  for (auto _ : state) {
    // The first logged op: worst case is O(1), last is O(log length).
    benchmark::DoNotOptimize(
        obj.apply(op, 0, static_cast<std::uint64_t>(log_length - 1)));
  }
}

template <typename Lock>
void BM_LockThroughput(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int acquisitions = 200;
  for (auto _ : state) {
    rcons::runtime::PersistentArena arena;
    Lock lock(arena, threads);
    std::vector<std::thread> pool;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = 0; i < acquisitions; ++i) {
          lock.acquire(t);
          lock.release(t);
        }
      });
    }
    for (auto& th : pool) th.join();
  }
  state.SetItemsProcessed(state.iterations() * threads * acquisitions);
}

}  // namespace

BENCHMARK(BM_UniversalSequentialApply)->Arg(64)->Arg(256)->Arg(1024);
BENCHMARK(BM_UniversalContended)->Arg(1)->Arg(2)->Arg(4);
BENCHMARK(BM_UniversalRecoveryReinvocation)->Arg(16)->Arg(256);
BENCHMARK_TEMPLATE(BM_LockThroughput, rcons::runtime::RecoverableTasLock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);
BENCHMARK_TEMPLATE(BM_LockThroughput, rcons::runtime::RecoverableTicketLock)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4);

BENCHMARK_MAIN();
