// Experiment E1 — the claims table (the paper's implicit "Table 1"):
// consensus number vs recoverable consensus number per type, computed by
// the discerning / recording deciders. Prints the table on startup and
// benchmarks the deciders on representative cells.
//
// Expected shape (paper + classical results):
//   register 1/1; test&set, swap, fetch&add 2/1 (Golab's collapse to 1);
//   cas, sticky unbounded/unbounded (no collapse); m-consensus objects
//   (m+1)/m (readable, gap 1); T_{n,n'} n/(n-1 by recording; true rcons is
//   n' — non-readable divergence); X_n stand-in profiled by the search.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <vector>

#include "hierarchy/consensus_number.hpp"
#include "hierarchy/discerning.hpp"
#include "hierarchy/recording.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "util/table.hpp"

namespace {

using rcons::hierarchy::compute_profile;
using rcons::hierarchy::TypeProfile;
using rcons::spec::ObjectType;

void print_claims_table() {
  struct RowSpec {
    ObjectType type;
    int max_n;
    const char* truth;  // the known ground truth (paper / literature)
  };
  const RowSpec rows[] = {
      {rcons::spec::make_register(2), 4, "cons 1, rcons 1 (Herlihy)"},
      {rcons::spec::make_test_and_set(), 4, "cons 2, rcons 1 (Golab)"},
      {rcons::spec::make_swap(2), 4, "cons 2, rcons 1"},
      {rcons::spec::make_fetch_and_add(4), 4, "cons 2, rcons 1"},
      {rcons::spec::make_cas(3), 5, "cons inf, rcons inf"},
      {rcons::spec::make_sticky_bit(), 5, "cons inf, rcons inf"},
      {rcons::spec::make_consensus_object(2), 5, "readable gap-1 family"},
      {rcons::spec::make_consensus_object(3), 6, "readable gap-1 family"},
      {rcons::spec::make_tnn(4, 1), 5, "cons 4, rcons 1 (Lemmas 15/16)"},
      {rcons::spec::make_tnn(4, 2), 5, "cons 4, rcons 2 (Lemmas 15/16)"},
      {rcons::spec::make_tnn(5, 2), 6, "cons 5, rcons 2 (Lemmas 15/16)"},
      {rcons::spec::make_queue(2), 4, "cons 2 (Herlihy); not readable"},
      {rcons::spec::make_xn(4), 5, "X_4: cons 4, rcons 2 (gap 2)"},
      {rcons::spec::make_xn(5), 6, "X_5: cons 5, rcons 3 (gap 2)"},
  };

  rcons::Table table({"type", "readable", "discerning level",
                      "recording level", "ground truth"});
  for (const RowSpec& row : rows) {
    const TypeProfile p = compute_profile(row.type, row.max_n);
    table.add_row({p.type_name, p.readable ? "yes" : "no",
                   p.discerning.to_string() +
                       (p.discerning.exact ? "" : " (cap)"),
                   p.recording.to_string() +
                       (p.recording.exact ? "" : " (cap)"),
                   row.truth});
  }
  std::printf(
      "E1: computed hierarchy levels (readable rows: levels ARE the "
      "consensus numbers)\n%s\n",
      table.render().c_str());
}

void BM_DiscerningCheck(benchmark::State& state, const ObjectType& type,
                        int n) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::check_discerning(type, n));
  }
}

void BM_RecordingCheck(benchmark::State& state, const ObjectType& type,
                       int n) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::check_recording(type, n));
  }
}

const ObjectType g_tas = rcons::spec::make_test_and_set();
const ObjectType g_cas3 = rcons::spec::make_cas(3);
const ObjectType g_tnn52 = rcons::spec::make_tnn(5, 2);

// E1b — the repeated-sweep ablation. Re-profiling the whole table after an
// unrelated change is the common workflow; the persistent verdict cache
// turns the second sweep into pure lookups. The cold/warm pair below is
// the headline number for the cache (warm must beat cold by >= 2x).
// Exact-level types, so every profile pays for full (failing) scans one
// level past the answer — the cells that dominate a real table run.
std::vector<ObjectType> sweep_types() {
  return {rcons::spec::make_consensus_object(2),
          rcons::spec::make_consensus_object(3),
          rcons::spec::make_tnn(4, 2),
          rcons::spec::make_tnn(5, 2),
          rcons::spec::make_xn(4),
          rcons::spec::make_xn(5)};
}

void BM_HierarchySweep_Cold(benchmark::State& state) {
  const std::vector<ObjectType> types = sweep_types();
  for (auto _ : state) {
    for (const ObjectType& type : types) {
      benchmark::DoNotOptimize(compute_profile(type, 6));
    }
  }
}

void BM_HierarchySweep_WarmCache(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("rcons-bench-cache-" + std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const rcons::reduction::VerdictCache cache(dir);
  rcons::hierarchy::ProfileOptions options;
  options.cache = &cache;
  const std::vector<ObjectType> types = sweep_types();
  for (const ObjectType& type : types) {
    compute_profile(type, 6, options);  // populate
  }
  for (auto _ : state) {
    for (const ObjectType& type : types) {
      benchmark::DoNotOptimize(compute_profile(type, 6, options));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace

BENCHMARK(BM_HierarchySweep_Cold)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_HierarchySweep_WarmCache)->Unit(benchmark::kMillisecond);

BENCHMARK_CAPTURE(BM_DiscerningCheck, tas_n2, g_tas, 2);
BENCHMARK_CAPTURE(BM_DiscerningCheck, tas_n3, g_tas, 3);
BENCHMARK_CAPTURE(BM_DiscerningCheck, cas3_n4, g_cas3, 4);
BENCHMARK_CAPTURE(BM_DiscerningCheck, tnn52_n5, g_tnn52, 5);
BENCHMARK_CAPTURE(BM_RecordingCheck, tas_n2, g_tas, 2);
BENCHMARK_CAPTURE(BM_RecordingCheck, cas3_n4, g_cas3, 4);
BENCHMARK_CAPTURE(BM_RecordingCheck, tnn52_n4, g_tnn52, 4);

int main(int argc, char** argv) {
  print_claims_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
