// Experiment: the static bounds pre-verdict engine (DESIGN.md §11).
// Prints a per-type prune table on startup — bracket, fired rules, and
// how many per-n decider runs the bracket obviated — then benchmarks
// (a) the analyzer itself (must be negligible next to any decider run)
// and (b) the headline pair: a full catalog profile sweep with bounds
// off vs on. The on/off pair is the number the pre-pass is judged by;
// results are recorded in BENCH_model_checker.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/static_bounds/static_bounds.hpp"
#include "hierarchy/consensus_number.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"

namespace {

using rcons::analysis::BoundsReport;
using rcons::hierarchy::compute_profile;
using rcons::hierarchy::ProfileOptions;
using rcons::spec::ObjectType;

// The shipped catalog, skewed the way real sweeps are: a few cheap
// finite-level types and a few expensive unbounded ones (cas3, sticky)
// whose full failing scans dominate an unpruned table run.
std::vector<ObjectType> sweep_types() {
  return {rcons::spec::make_register(2),
          rcons::spec::make_test_and_set(),
          rcons::spec::make_swap(2),
          rcons::spec::make_fetch_and_add(3),
          rcons::spec::make_cas(3),
          rcons::spec::make_sticky_bit(),
          rcons::spec::make_consensus_object(2),
          rcons::spec::make_tnn(4, 2),
          rcons::spec::make_xn(4)};
}

constexpr int kMaxN = 6;

std::int64_t counter(const char* name) {
  return rcons::trace::metrics().counter(name);
}

void print_prune_table() {
  rcons::Table table({"type", "cons bracket", "rcons bracket", "rules",
                      "pruned", "decider runs"});
  std::int64_t total_pruned = 0;
  std::int64_t total_runs = 0;
  for (const ObjectType& type : sweep_types()) {
    const BoundsReport bounds = rcons::analysis::analyze_static_bounds(type);
    ProfileOptions options;
    options.bounds = &bounds;
    const std::int64_t pruned0 =
        counter("bounds.pruned_lo") + counter("bounds.pruned_hi");
    const std::int64_t runs0 = counter("bounds.decider_runs");
    compute_profile(type, kMaxN, options);
    const std::int64_t pruned =
        counter("bounds.pruned_lo") + counter("bounds.pruned_hi") - pruned0;
    const std::int64_t runs = counter("bounds.decider_runs") - runs0;
    total_pruned += pruned;
    total_runs += runs;
    std::string rules;
    for (const auto& d : bounds.findings.diagnostics()) {
      if (rules.find(d.rule) != std::string::npos) continue;
      if (!rules.empty()) rules += ' ';
      rules += d.rule;
    }
    table.add_row({type.name(), bounds.discerning.to_string(),
                   bounds.recording.to_string(),
                   rules.empty() ? "-" : rules, std::to_string(pruned),
                   std::to_string(runs)});
  }
  std::printf(
      "static bounds prune table (profile to n=%d): %lld of %lld per-n "
      "verdicts decided statically\n%s\n",
      kMaxN, static_cast<long long>(total_pruned),
      static_cast<long long>(total_pruned + total_runs),
      table.render().c_str());
}

const ObjectType g_tas = rcons::spec::make_test_and_set();
const ObjectType g_cas3 = rcons::spec::make_cas(3);
const ObjectType g_tnn42 = rcons::spec::make_tnn(4, 2);

void BM_AnalyzeStaticBounds(benchmark::State& state, const ObjectType& type) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::analysis::analyze_static_bounds(type));
  }
}

// The baseline: pure exact deciders over the whole catalog.
void BM_CatalogSweep_BoundsOff(benchmark::State& state) {
  const std::vector<ObjectType> types = sweep_types();
  for (auto _ : state) {
    for (const ObjectType& type : types) {
      benchmark::DoNotOptimize(compute_profile(type, kMaxN));
    }
  }
}

// The pre-pass path exactly as the CLI runs it: analyze, then profile
// with the bracket installed. Analysis cost is deliberately inside the
// timed region — the claim is that the pair (analyze + pruned profile)
// beats the plain profile, not that pruning is free.
void BM_CatalogSweep_BoundsOn(benchmark::State& state) {
  const std::vector<ObjectType> types = sweep_types();
  const std::int64_t pruned0 =
      counter("bounds.pruned_lo") + counter("bounds.pruned_hi");
  const std::int64_t runs0 = counter("bounds.decider_runs");
  for (auto _ : state) {
    for (const ObjectType& type : types) {
      const BoundsReport bounds =
          rcons::analysis::analyze_static_bounds(type);
      ProfileOptions options;
      options.bounds = &bounds;
      benchmark::DoNotOptimize(compute_profile(type, kMaxN, options));
    }
  }
  const double pruned = static_cast<double>(
      counter("bounds.pruned_lo") + counter("bounds.pruned_hi") - pruned0);
  const double runs =
      static_cast<double>(counter("bounds.decider_runs") - runs0);
  state.counters["pruned_verdicts"] =
      benchmark::Counter(pruned, benchmark::Counter::kAvgIterations);
  state.counters["decider_runs"] =
      benchmark::Counter(runs, benchmark::Counter::kAvgIterations);
  state.counters["prune_rate"] =
      pruned + runs > 0 ? pruned / (pruned + runs) : 0.0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_AnalyzeStaticBounds, tas, g_tas);
BENCHMARK_CAPTURE(BM_AnalyzeStaticBounds, cas3, g_cas3);
BENCHMARK_CAPTURE(BM_AnalyzeStaticBounds, tnn42, g_tnn42);

BENCHMARK(BM_CatalogSweep_BoundsOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CatalogSweep_BoundsOn)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_prune_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
