// Experiment E4 — exhaustive model-checking cost across protocols and
// crash regimes. Prints the per-protocol state-space sizes (the "table"
// behind the SAFE verdicts in tests/algo_test.cpp) and benchmarks the
// explorations.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "algo/cas_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "exec/backend.hpp"
#include "spec/catalog.hpp"
#include "util/table.hpp"
#include "valency/model_checker.hpp"

namespace {

using rcons::exec::Backend;
using rcons::valency::check_safety_all_inputs;
using rcons::valency::CrashMode;
using rcons::valency::SafetyOptions;

void print_state_space_table() {
  struct Row {
    const char* name;
    std::unique_ptr<rcons::exec::Protocol> protocol;
  };
  std::vector<Row> rows;
  rows.push_back({"cas_consensus(2)",
                  std::make_unique<rcons::algo::CasConsensus>(2)});
  rows.push_back({"cas_consensus(3)",
                  std::make_unique<rcons::algo::CasConsensus>(3)});
  rows.push_back({"cas_consensus(4)",
                  std::make_unique<rcons::algo::CasConsensus>(4)});
  rows.push_back({"tas_racing",
                  std::make_unique<rcons::algo::TasRacingConsensus>()});
  rows.push_back({"tnn_rec(4,2)x2",
                  std::make_unique<rcons::algo::TnnRecoverableConsensus>(
                      4, 2, 2)});
  rows.push_back({"tnn_rec(6,3)x3",
                  std::make_unique<rcons::algo::TnnRecoverableConsensus>(
                      6, 3, 3)});
  rows.push_back({"recording(cas3)x2",
                  std::make_unique<rcons::algo::RecordingConsensus>(
                      rcons::spec::make_cas(3), 2)});
  rows.push_back({"recording(cas3)x3",
                  std::make_unique<rcons::algo::RecordingConsensus>(
                      rcons::spec::make_cas(3), 3)});

  rcons::Table table({"protocol", "crash mode", "verdict", "states",
                      "configs"});
  for (const auto& row : rows) {
    for (const CrashMode mode :
         {CrashMode::kNone, CrashMode::kIndividual, CrashMode::kBoth}) {
      SafetyOptions options;
      options.crash_mode = mode;
      const auto r = check_safety_all_inputs(*row.protocol, options);
      const char* mode_name = mode == CrashMode::kNone ? "none"
                              : mode == CrashMode::kIndividual ? "individual"
                                                               : "both";
      table.add_row({row.name, mode_name,
                     r.ok() ? "SAFE" : "VIOLATION",
                     std::to_string(r.states_visited),
                     std::to_string(r.configs_visited)});
    }
    table.add_separator();
  }
  std::printf("E4: exhaustive state spaces per protocol and crash regime\n%s\n",
              table.render().c_str());
}

void BM_SafetyCheck(benchmark::State& state,
                    const std::function<std::unique_ptr<rcons::exec::Protocol>()>&
                        make,
                    CrashMode mode, int threads,
                    Backend backend = Backend::kInterp) {
  const auto protocol = make();
  SafetyOptions options;
  options.crash_mode = mode;
  options.threads = threads;
  options.backend = backend;
  std::size_t states = 0;
  for (auto _ : state) {
    const auto r = check_safety_all_inputs(*protocol, options);
    states = r.states_visited;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = threads;
  state.counters["aot"] = backend == Backend::kAot ? 1 : 0;
}

/// One mixed-input exploration — the parallel frontier engine's target
/// workload (check_safety_all_inputs additionally amortizes across input
/// vectors; this isolates a single BFS).
void BM_SingleInputSafety(
    benchmark::State& state,
    const std::function<std::unique_ptr<rcons::exec::Protocol>()>& make,
    CrashMode mode, int threads, Backend backend = Backend::kInterp) {
  const auto protocol = make();
  std::vector<int> inputs(
      static_cast<std::size_t>(protocol->process_count()), 1);
  inputs[0] = 0;
  SafetyOptions options;
  options.crash_mode = mode;
  options.threads = threads;
  options.backend = backend;
  std::size_t states = 0;
  for (auto _ : state) {
    const auto r = rcons::valency::check_safety(*protocol, inputs, options);
    states = r.states_visited;
    benchmark::DoNotOptimize(r.ok());
  }
  state.counters["states"] = static_cast<double>(states);
  state.counters["threads"] = threads;
  state.counters["aot"] = backend == Backend::kAot ? 1 : 0;
}

}  // namespace

BENCHMARK_CAPTURE(
    BM_SafetyCheck, cas3_individual,
    [] { return std::make_unique<rcons::algo::CasConsensus>(3); },
    CrashMode::kIndividual, 1);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tnn42_individual,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(4, 2, 2);
    },
    CrashMode::kIndividual, 1);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, recording_cas3x2_individual,
    [] {
      return std::make_unique<rcons::algo::RecordingConsensus>(
          rcons::spec::make_cas(3), 2);
    },
    CrashMode::kIndividual, 1);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tas_racing_individual,
    [] { return std::make_unique<rcons::algo::TasRacingConsensus>(); },
    CrashMode::kIndividual, 1);

// 4-thread parallel-engine counterparts (bit-identical results; see
// tests/parallel_diff_test.cpp). BENCH_model_checker.json records both.
BENCHMARK_CAPTURE(
    BM_SafetyCheck, cas3_individual_threads4,
    [] { return std::make_unique<rcons::algo::CasConsensus>(3); },
    CrashMode::kIndividual, 4);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tnn42_individual_threads4,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(4, 2, 2);
    },
    CrashMode::kIndividual, 4);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, recording_cas3x2_individual_threads4,
    [] {
      return std::make_unique<rcons::algo::RecordingConsensus>(
          rcons::spec::make_cas(3), 2);
    },
    CrashMode::kIndividual, 4);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tas_racing_individual_threads4,
    [] { return std::make_unique<rcons::algo::TasRacingConsensus>(); },
    CrashMode::kIndividual, 4);

// AOT-backend counterparts (bit-identical results; tests/codegen_test.cpp)
// — the serial cells are the interp-vs-aot speedup the PackedEngine exists
// for; BENCH_model_checker.json records both sides.
BENCHMARK_CAPTURE(
    BM_SafetyCheck, cas3_individual_aot,
    [] { return std::make_unique<rcons::algo::CasConsensus>(3); },
    CrashMode::kIndividual, 1, Backend::kAot);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tnn42_individual_aot,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(4, 2, 2);
    },
    CrashMode::kIndividual, 1, Backend::kAot);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, recording_cas3x2_individual_aot,
    [] {
      return std::make_unique<rcons::algo::RecordingConsensus>(
          rcons::spec::make_cas(3), 2);
    },
    CrashMode::kIndividual, 1, Backend::kAot);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tas_racing_individual_aot,
    [] { return std::make_unique<rcons::algo::TasRacingConsensus>(); },
    CrashMode::kIndividual, 1, Backend::kAot);
BENCHMARK_CAPTURE(
    BM_SafetyCheck, tnn42_individual_threads4_aot,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(4, 2, 2);
    },
    CrashMode::kIndividual, 4, Backend::kAot);

// The largest single exploration: one mixed-input BFS of tnn_rec(6,3)x3
// under individual crashes — the speedup target for the parallel frontier.
BENCHMARK_CAPTURE(
    BM_SingleInputSafety, tnn63_individual,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(6, 3, 3);
    },
    CrashMode::kIndividual, 1);
BENCHMARK_CAPTURE(
    BM_SingleInputSafety, tnn63_individual_threads4,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(6, 3, 3);
    },
    CrashMode::kIndividual, 4);
BENCHMARK_CAPTURE(
    BM_SingleInputSafety, tnn63_individual_aot,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(6, 3, 3);
    },
    CrashMode::kIndividual, 1, Backend::kAot);
BENCHMARK_CAPTURE(
    BM_SingleInputSafety, tnn63_individual_threads4_aot,
    [] {
      return std::make_unique<rcons::algo::TnnRecoverableConsensus>(6, 3, 3);
    },
    CrashMode::kIndividual, 4, Backend::kAot);

int main(int argc, char** argv) {
  print_state_space_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
