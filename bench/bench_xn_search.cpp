// The X_n hunt as a measured workload: machines evaluated per second by
// the checker-guided search, and the per-profile cost that dominates it.
// (The gap-2 machine shipped as make_xn(4) came out of exactly this loop;
// see examples/xn_search for the interactive tool.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "spec/paper_types.hpp"

namespace {

void BM_SearchBurst(benchmark::State& state) {
  const int mutations = static_cast<int>(state.range(0));
  std::uint64_t seed = 1000;
  std::uint64_t machines = 0;
  for (auto _ : state) {
    rcons::hierarchy::MachineSearchOptions options;
    options.restarts = 1;
    options.mutations_per_restart = mutations;
    options.seed = seed++;
    options.max_n = 4;
    const auto r = rcons::hierarchy::search_gap_machines(options);
    machines += r.machines_evaluated;
    benchmark::DoNotOptimize(r.best_gap);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(machines));
}

void BM_ProfileX4(benchmark::State& state) {
  const auto x4 = rcons::spec::make_xn(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::hierarchy::compute_profile(x4, 5));
  }
}

void BM_EraseCounterFamilyProfile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rcons::hierarchy::profile_erase_counter_family(2, 4));
  }
}

}  // namespace

BENCHMARK(BM_SearchBurst)->Arg(20)->Arg(50);
BENCHMARK(BM_ProfileX4);
BENCHMARK(BM_EraseCounterFamilyProfile);

int main(int argc, char** argv) {
  const auto x4 = rcons::spec::make_xn(4);
  const auto p = rcons::hierarchy::compute_profile(x4, 5);
  std::printf("shipped X_4 profile: discerning %s, recording %s (gap %d)\n\n",
              p.discerning.to_string().c_str(),
              p.recording.to_string().c_str(),
              p.discerning.value - p.recording.value);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
