// Experiment: the implements-lattice (DESIGN.md §13). Prints the certified
// dominance edges over a catalog sweep on startup, then benchmarks (a) the
// pair analysis itself and (b) the headline pair: a catalog profile sweep
// with lattice pruning off vs on. The sweep deliberately contains a
// relabeled duplicate of the most expensive type (cas3) and an embedded
// sibling pair (register2 within register3), because collapsing relabeled
// orbits and flowing verdicts along embeddings is exactly what the lattice
// buys. Bounds are off in both configs so the measured delta is the
// lattice's alone. Results are recorded in BENCH_model_checker.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "analysis/order/lattice.hpp"
#include "analysis/order/simulation.hpp"
#include "hierarchy/consensus_number.hpp"
#include "reduction/type_canon.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "trace/metrics.hpp"
#include "util/table.hpp"

namespace {

using rcons::analysis::order::OrderLattice;
using rcons::hierarchy::compute_profile;
using rcons::hierarchy::ProfileOptions;
using rcons::spec::ObjectType;

constexpr int kMaxN = 6;

/// cas3 under a nontrivial relabeling: isomorphic, so the lattice should
/// decide its entire profile from the original's exploration.
ObjectType make_cas3_relabeled() {
  const ObjectType cas3 = rcons::spec::make_cas(3);
  rcons::reduction::TypeRelabeling perm =
      rcons::reduction::identity_relabeling(cas3);
  for (std::size_t i = 0; i < perm.value_perm.size(); ++i) {
    perm.value_perm[i] =
        static_cast<int>(perm.value_perm.size() - 1 - i);
  }
  return rcons::reduction::relabel_type(cas3, perm, "cas3_relabeled");
}

std::vector<ObjectType> sweep_types() {
  return {rcons::spec::make_cas(3),
          make_cas3_relabeled(),
          rcons::spec::make_register(3),
          rcons::spec::make_register(2),
          rcons::spec::make_test_and_set(),
          rcons::spec::make_sticky_bit(),
          rcons::spec::make_consensus_object(2),
          rcons::spec::make_fetch_and_add(3)};
}

std::int64_t counter(const char* name) {
  return rcons::trace::metrics().counter(name);
}

/// The lattice-on sweep exactly as `order --all` runs it: relate every
/// pair, then profile in sequence, consulting the implied brackets and
/// feeding each computed profile back in.
void lattice_sweep(const std::vector<ObjectType>& types, bool pruning) {
  OrderLattice lattice;
  for (const ObjectType& type : types) lattice.add_type(type);
  if (pruning) lattice.relate_all();
  for (int i = 0; i < lattice.size(); ++i) {
    ProfileOptions options;
    rcons::analysis::LevelBracket discerning;
    rcons::analysis::LevelBracket recording;
    if (pruning) {
      discerning = lattice.implied(i, "discerning");
      recording = lattice.implied(i, "recording");
      options.order_discerning = &discerning;
      options.order_recording = &recording;
    }
    const auto profile = compute_profile(lattice.type(i), kMaxN, options);
    lattice.note_profile(i, profile, kMaxN);
  }
}

void print_dominance_table() {
  const std::vector<ObjectType> types = sweep_types();
  OrderLattice lattice;
  for (const ObjectType& type : types) lattice.add_type(type);
  const int edges = lattice.relate_all();
  rcons::Table table({"high", "low", "rule", "kind"});
  for (const auto& e : lattice.edges()) {
    table.add_row({lattice.name(e.high), lattice.name(e.low), e.cert.rule,
                   rcons::analysis::order::cert_kind_name(e.cert.kind)});
  }
  const std::int64_t pruned0 =
      counter("order.pruned_lo") + counter("order.pruned_hi");
  const std::int64_t runs0 = counter("bounds.decider_runs");
  lattice_sweep(types, true);
  const std::int64_t pruned =
      counter("order.pruned_lo") + counter("order.pruned_hi") - pruned0;
  const std::int64_t runs = counter("bounds.decider_runs") - runs0;
  std::printf(
      "order lattice: %d certified edges over %d types; sweep to n=%d "
      "decided %lld of %lld per-n verdicts from the lattice\n%s\n",
      edges, lattice.size(), kMaxN, static_cast<long long>(pruned),
      static_cast<long long>(pruned + runs), table.render().c_str());
}

const ObjectType g_cas3 = rcons::spec::make_cas(3);
const ObjectType g_cas3_relabeled = make_cas3_relabeled();
const ObjectType g_register3 = rcons::spec::make_register(3);
const ObjectType g_register2 = rcons::spec::make_register(2);

void BM_AnalyzeOrder(benchmark::State& state, const ObjectType& a,
                     const ObjectType& b) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcons::analysis::order::analyze_order(a, b));
  }
}

void BM_CatalogSweep_LatticeOff(benchmark::State& state) {
  const std::vector<ObjectType> types = sweep_types();
  for (auto _ : state) {
    lattice_sweep(types, false);
  }
}

// Pair analysis and closure cost are inside the timed region: the claim is
// that (relate + pruned profiles) beats the plain profiles, not that the
// lattice is free.
void BM_CatalogSweep_LatticeOn(benchmark::State& state) {
  const std::vector<ObjectType> types = sweep_types();
  const std::int64_t pruned0 =
      counter("order.pruned_lo") + counter("order.pruned_hi");
  const std::int64_t runs0 = counter("bounds.decider_runs");
  for (auto _ : state) {
    lattice_sweep(types, true);
  }
  const double pruned = static_cast<double>(
      counter("order.pruned_lo") + counter("order.pruned_hi") - pruned0);
  const double runs =
      static_cast<double>(counter("bounds.decider_runs") - runs0);
  state.counters["pruned_verdicts"] =
      benchmark::Counter(pruned, benchmark::Counter::kAvgIterations);
  state.counters["decider_runs"] =
      benchmark::Counter(runs, benchmark::Counter::kAvgIterations);
  state.counters["prune_rate"] =
      pruned + runs > 0 ? pruned / (pruned + runs) : 0.0;
}

}  // namespace

BENCHMARK_CAPTURE(BM_AnalyzeOrder, cas3_vs_relabeled, g_cas3,
                  g_cas3_relabeled);
BENCHMARK_CAPTURE(BM_AnalyzeOrder, register2_vs_register3, g_register2,
                  g_register3);

BENCHMARK(BM_CatalogSweep_LatticeOff)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CatalogSweep_LatticeOn)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  print_dominance_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
