// rcons_codegen — ahead-of-time stepper emitter (DESIGN.md §14).
//
//   rcons_codegen --out=DIR [--builtin] [--check] [--format=json]
//                 [<file.type>|<dir>...]
//
// Reads .type specs (directory targets expand to their *.type files,
// sorted; data/broken is NOT picked up unless named explicitly) plus —
// with --builtin — every built-in catalog shape, and emits the
// steppers_gen.hpp / steppers_gen.cpp translation unit of branch-free
// packed delta tables that src/codegen/registry.cpp serves to the
// engines under --backend=aot.
//
// Emission is gated on the TS001-TS008 type lint: any input the linter
// rejects at error severity makes the whole run fail with the findings
// as a structured report (text, or one JSON document under
// --format=json) and NO files written — never generated-but-wrong code.
//
// --check regenerates and byte-compares against the files already in
// --out instead of writing: any drift (stale tables, hand edits, a new
// .type file not yet regenerated) exits 1 naming the drifted file. CI
// runs this over --builtin data as the codegen-parity gate.
//
// Exit codes: 0 = emitted (or --check found no drift), 1 = lint
// rejection or --check drift, 2 = usage error.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "codegen/emit.hpp"
#include "serve/commands.hpp"
#include "spec/serialize.hpp"

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_codegen: %s\n", message.c_str());
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Expands a target into .type file paths (a directory contributes its
/// immediate *.type files, sorted; data/broken stays out unless named).
bool expand_target(const std::string& target, std::vector<std::string>* files,
                   std::string* error) {
  std::error_code ec;
  if (std::filesystem::is_directory(target, ec)) {
    std::vector<std::string> found;
    for (const auto& entry :
         std::filesystem::directory_iterator(target, ec)) {
      if (entry.path().extension() == ".type") {
        found.push_back(entry.path().string());
      }
    }
    if (ec) {
      *error = "cannot read directory '" + target + "'";
      return false;
    }
    std::sort(found.begin(), found.end());
    files->insert(files->end(), found.begin(), found.end());
    return true;
  }
  if (!std::filesystem::exists(target, ec)) {
    *error = "no such file or directory: '" + target + "'";
    return false;
  }
  files->push_back(target);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_dir;
  bool builtin = false;
  bool check = false;
  bool json = false;
  std::vector<std::string> targets;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_dir = arg.substr(6);
      if (out_dir.empty()) return fail("--out wants a directory");
    } else if (arg == "--builtin") {
      builtin = true;
    } else if (arg == "--check") {
      check = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown flag '" + arg + "'");
    } else {
      targets.push_back(arg);
    }
  }
  if (out_dir.empty()) {
    return fail("usage: rcons_codegen --out=DIR [--builtin] [--check] "
                "[--format=json] [<file.type>|<dir>...]");
  }
  if (!builtin && targets.empty()) {
    return fail("no inputs: name .type files/directories or pass --builtin");
  }

  std::vector<rcons::codegen::EmitInput> inputs;
  if (builtin) {
    for (const auto& [name, make] : rcons::serve::type_catalog()) {
      rcons::codegen::EmitInput input;
      input.name = name;
      input.type = make();
      inputs.push_back(std::move(input));
    }
  }
  std::vector<std::string> files;
  for (const std::string& target : targets) {
    std::string error;
    if (!expand_target(target, &files, &error)) return fail(error);
  }
  for (const std::string& path : files) {
    rcons::codegen::EmitInput input;
    input.name = std::filesystem::path(path).stem().string();
    if (!read_file(path, &input.text)) {
      return fail("cannot read '" + path + "'");
    }
    // A parse failure leaves the default type in place; the lint gate
    // sees the raw text, reports TS008, and rejects before emission ever
    // touches it.
    const rcons::spec::ParseResult parsed =
        rcons::spec::parse_type(input.text);
    if (parsed.ok()) input.type = *parsed.type;
    inputs.push_back(std::move(input));
  }

  const rcons::codegen::EmitResult result =
      rcons::codegen::emit_steppers(inputs);
  if (!result.ok) {
    std::fprintf(stderr, "rcons_codegen: %s\n", result.error.c_str());
    if (json) {
      std::printf("%s\n", result.findings.render_json().c_str());
    } else {
      std::printf("%s", result.findings.render_text().c_str());
    }
    return 1;
  }
  // Non-gating findings (warnings/notes) still surface, on stderr so
  // stdout stays reserved for the structured rejection document.
  if (!result.findings.diagnostics().empty() && !check) {
    std::fprintf(stderr, "%s", result.findings.render_text(false).c_str());
  }

  const std::string header_path = out_dir + "/steppers_gen.hpp";
  const std::string source_path = out_dir + "/steppers_gen.cpp";
  if (check) {
    int drifted = 0;
    const auto compare = [&](const std::string& path,
                             const std::string& fresh) {
      std::string current;
      if (!read_file(path, &current)) {
        std::fprintf(stderr, "rcons_codegen: drift: cannot read '%s'\n",
                     path.c_str());
        ++drifted;
      } else if (current != fresh) {
        std::fprintf(stderr,
                     "rcons_codegen: drift: '%s' differs from a fresh "
                     "emission (regenerate with --out=%s)\n",
                     path.c_str(), out_dir.c_str());
        ++drifted;
      }
    };
    compare(header_path, result.header);
    compare(source_path, result.source);
    if (drifted != 0) return 1;
    std::fprintf(stderr, "rcons_codegen: no drift (%zu steppers)\n",
                 result.emitted.size());
    return 0;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const auto write = [&](const std::string& path,
                         const std::string& content) {
    std::ofstream out(path, std::ios::binary);
    if (!out) return false;
    out << content;
    return out.good();
  };
  if (!write(header_path, result.header) ||
      !write(source_path, result.source)) {
    return fail("cannot write into '" + out_dir + "'");
  }
  std::fprintf(stderr, "rcons_codegen: wrote %s and %s (%zu steppers)\n",
               header_path.c_str(), source_path.c_str(),
               result.emitted.size());
  return 0;
}
