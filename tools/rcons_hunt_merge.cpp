// rcons_hunt_merge — fold rcons-hunt shard databases into one landscape
// table (DESIGN.md §15, EXPERIMENTS.md E12).
//
//   rcons_hunt_merge [--format=text|json] [--out=FILE] <shard.hunt>...
//
// Inputs are checkpoint files from ANY partitioning of the same campaign
// (same box, max_n, and engine salt; the shard count may differ between
// inputs). Records deduplicate by canonical form; disagreeing duplicates
// are a hard failure that prints both provenances — never
// last-writer-wins. --out writes the merged database (the serialized,
// key-sorted record table, byte-identical for every partitioning of the
// same campaign); stdout gets the landscape/gap/frontier summary in the
// chosen format.
//
// Exit codes: 0 = merged (all shards complete), 1 = conflict or corrupt
// input, 2 = usage error, 3 = merged but some shard was incomplete (the
// table is a valid partial view, not the whole box).
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/merge.hpp"

namespace {

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_hunt_merge: %s\n", message.c_str());
  return 2;
}

/// Writes `content` to `path`; merge output is the deliverable, so unlike
/// the CLI's observability spills a failure here is a real error.
bool write_file(const std::string& path, const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "wb");
  if (out == nullptr) return false;
  const bool wrote =
      std::fwrite(content.data(), 1, content.size(), out) == content.size();
  return std::fclose(out) == 0 && wrote;
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  std::string out_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
      if (out_path.empty()) return fail("--out wants a file");
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown flag '" + arg + "'");
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    return fail("usage: rcons_hunt_merge [--format=text|json] [--out=FILE] "
                "<shard.hunt>...");
  }

  const rcons::campaign::MergeOutcome merged =
      rcons::campaign::merge_databases(paths);
  if (!merged.ok) {
    std::fprintf(stderr, "rcons_hunt_merge: %s\n", merged.error.c_str());
    return 1;
  }
  if (!out_path.empty()) {
    if (!write_file(out_path, rcons::campaign::serialize_merged(merged))) {
      std::fprintf(stderr, "rcons_hunt_merge: cannot write '%s'\n",
                   out_path.c_str());
      return 1;
    }
    std::fprintf(stderr, "rcons_hunt_merge: wrote %s\n", out_path.c_str());
  }
  if (json) {
    std::printf("%s\n", rcons::campaign::render_merged_json(merged).c_str());
  } else {
    std::printf("%s", rcons::campaign::render_merged_text(merged).c_str());
  }
  return merged.all_complete ? 0 : 3;
}
