// rcons_cli — command-line driver for the rcons library.
//
//   rcons_cli list
//   rcons_cli show     <type>            describe a type's state machine
//   rcons_cli export   <type>            emit the .type interchange format
//   rcons_cli dot      <type>            emit Graphviz dot
//   rcons_cli profile  <type> [max_n]    compute discerning/recording levels
//   rcons_cli witnesses <type> <n> [discerning|recording|nonhiding] [max]
//   rcons_cli verify   <protocol...>     exhaustively model-check a protocol
//       protocols: cas <n> | tas | naive <n> | sticky <n>
//                  | propose <m> <procs> | tnn <n> <n'> <procs>
//                  | tnnwf <n> <n'> | recording <type> <n> [relaxed]
//       ("relaxed" is the fault-injection spelling: proposal-register
//        writes become unpersisted invokes, the RC004 fixture)
//   rcons_cli critical <protocol...>     valency trace (Figures 1-2 style)
//   rcons_cli search   [restarts] [mutations] [seed]
//   rcons_cli lint     [--threshold=error|warning|note]
//                      <type>... | protocol <protocol...>
//                                        static analysis (see DESIGN.md);
//                                        type targets also run the SA
//                                        bounds pass, protocol targets the
//                                        RC crash-recovery audit; findings
//                                        print in canonical order (rule,
//                                        subject, location);
//                                        exits 1 on findings >= threshold
//   rcons_cli lint --rules               print the rule catalog
//   rcons_cli lint --explain=RULE        same as `explain RULE`
//   rcons_cli explain  <rule-id>         one-paragraph explanation of a
//                                        lint/audit/bounds rule (TS/PL/RC/SA)
//   rcons_cli replay   <file.trace>      re-execute a captured
//                                        counterexample deterministically,
//                                        print its timeline, and check the
//                                        round-trip guarantee (identical
//                                        verdict + state hash; DESIGN.md §9)
//
// Global flags (any position):
//   --threads=N      exploration parallelism for verify/profile/search/
//                    lint-protocol. Default: the hardware thread count;
//                    --threads=1 runs the original serial engines. Results
//                    are bit-identical for every thread count (DESIGN.md §7).
//   --format=json    machine-readable stdout for verify and lint (one JSON
//                    document; all progress goes to stderr)
//   --trace-out=DIR  write one replayable .trace file per safety/liveness/
//                    RC-audit violation into DIR (created if missing)
//   --metrics-out=F  after the command, write the metrics registry as one
//                    JSON document to F
//   --spans-out=F    after the command, write phase spans as a
//                    chrome://tracing-compatible JSON array to F
//   --max-states=N   exploration state bound for verify (per input vector;
//                    a truncated scan reports INCONCLUSIVE, never SAFE)
//   --reduce=M       symmetry reduction (DESIGN.md §10). M = symmetry
//                    (default): verify quotients process-symmetric
//                    protocols by the input-stabilizer and profile prunes
//                    assignment orbits under the type's automorphism group;
//                    M = none restores the unreduced engines. Verdicts are
//                    identical either way; state/assignment counts differ.
//   --cache=on|off   persistent verdict cache for profile (default: on).
//   --bounds=on|off  static pre-verdict bounds for profile (default: on).
//                    The SA pass (DESIGN.md §11) brackets both levels
//                    before any exact decider runs; decided per-n verdicts
//                    are skipped and the rest run on the bounds quotient.
//                    Levels are identical either way — only the number of
//                    decider runs (and the `"bounds"` JSON block) changes.
//   --cache-dir=DIR  cache location (default: $XDG_CACHE_HOME/rcons or
//                    $HOME/.cache/rcons). Entries are keyed by the
//                    canonical type, so isomorphic types share entries;
//                    corrupt or stale files are skipped and recomputed.
//
// Exit codes: 0 = ok/SAFE, 1 = violation/findings/round-trip mismatch,
// 2 = usage error, 3 = INCONCLUSIVE (verify only: the scan was truncated
// by --max-states and proves nothing either way).
//
// <type> is either a catalog name (see `list`) or a path to a .type file.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "analysis/analysis.hpp"
#include "analysis/static_bounds/static_bounds.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "hierarchy/witnesses.hpp"
#include "reduction/verdict_cache.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"
#include "trace/counterexample.hpp"
#include "trace/metrics.hpp"
#include "trace/replay.hpp"
#include "util/parallel.hpp"
#include "valency/critical.hpp"
#include "valency/lemmas.hpp"
#include "valency/model_checker.hpp"
#include "valency/theorem13.hpp"

namespace {

using rcons::spec::ObjectType;

/// Exploration threads for verify/profile/search, from --threads=N.
/// Initialized in main to the hardware thread count.
int g_threads = 1;

/// Global output flags (see the file header). Empty string = disabled.
std::string g_trace_out;
std::string g_metrics_out;
std::string g_spans_out;
std::size_t g_max_states = 0;  // 0 = engine defaults
bool g_json = false;           // --format=json (verify, profile, and lint)
bool g_reduce = true;          // --reduce=symmetry|none
bool g_cache_on = true;        // --cache=on|off (profile verdict cache)
bool g_bounds_on = true;       // --bounds=on|off (static pre-verdict pass)
std::string g_cache_dir;       // --cache-dir=DIR; empty = default location

const std::map<std::string, std::function<ObjectType()>>& catalog() {
  static const auto* kCatalog =
      new std::map<std::string, std::function<ObjectType()>>{
          {"register2", [] { return rcons::spec::make_register(2); }},
          {"register3", [] { return rcons::spec::make_register(3); }},
          {"tas", [] { return rcons::spec::make_test_and_set(); }},
          {"swap2", [] { return rcons::spec::make_swap(2); }},
          {"swap3", [] { return rcons::spec::make_swap(3); }},
          {"faa4", [] { return rcons::spec::make_fetch_and_add(4); }},
          {"fai3",
           [] { return rcons::spec::make_fetch_and_increment_saturating(3); }},
          {"cas2", [] { return rcons::spec::make_cas(2); }},
          {"cas3", [] { return rcons::spec::make_cas(3); }},
          {"sticky2", [] { return rcons::spec::make_sticky_bit(); }},
          {"sticky3", [] { return rcons::spec::make_sticky(3); }},
          {"consensus2", [] { return rcons::spec::make_consensus_object(2); }},
          {"consensus3", [] { return rcons::spec::make_consensus_object(3); }},
          {"queue2", [] { return rcons::spec::make_queue(2); }},
          {"readable_queue2",
           [] { return rcons::spec::make_readable_queue(2); }},
          {"stack2", [] { return rcons::spec::make_stack(2); }},
          {"peek_queue2", [] { return rcons::spec::make_peek_queue(2); }},
          {"t31", [] { return rcons::spec::make_tnn(3, 1); }},
          {"t42", [] { return rcons::spec::make_tnn(4, 2); }},
          {"t52", [] { return rcons::spec::make_tnn(5, 2); }},
          {"t64", [] { return rcons::spec::make_tnn(6, 4); }},
          {"x4", [] { return rcons::spec::make_xn(4); }},
          {"x5", [] { return rcons::spec::make_xn(5); }},
      };
  return *kCatalog;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_cli: %s\n", message.c_str());
  return 2;
}

/// Writes `content` to `path`, creating parent directories. Reports (to
/// stderr) and returns false on failure instead of aborting the run: output
/// spilling is observability, never correctness.
bool spill_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rcons_cli: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Writes a finalized counterexample under --trace-out as `<stem>.trace`,
/// stamping the CLI protocol spec so `rcons_cli replay` can rebuild the
/// protocol. No-op when --trace-out is unset.
void write_trace(rcons::trace::Counterexample c, const std::string& spec,
                 const std::string& stem) {
  if (g_trace_out.empty()) return;
  c.protocol_spec = spec;
  std::error_code ec;
  std::filesystem::create_directories(g_trace_out, ec);
  const std::string path = g_trace_out + "/" + stem + ".trace";
  if (spill_file(path, rcons::trace::serialize_counterexample(c))) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", path.c_str());
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

/// Resolves a catalog name or a .type file path.
bool resolve_type(const std::string& what, ObjectType* out,
                  std::string* error) {
  const auto it = catalog().find(what);
  if (it != catalog().end()) {
    *out = it->second();
    return true;
  }
  std::ifstream in(what);
  if (!in) {
    *error = "unknown type '" + what + "' (not a catalog name; file not "
             "readable). Try `rcons_cli list`.";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const rcons::spec::ParseResult parsed =
      rcons::spec::parse_type(buffer.str());
  if (!parsed.ok()) {
    *error = what + ":" + std::to_string(parsed.error_line) + ": " +
             parsed.error;
    return false;
  }
  *out = *parsed.type;
  return true;
}

std::unique_ptr<rcons::exec::Protocol> make_protocol(int argc, char** argv,
                                                     std::string* error) {
  if (argc < 1) {
    *error = "missing protocol";
    return nullptr;
  }
  const std::string kind = argv[0];
  const auto arg = [&](int i, int fallback) {
    return argc > i ? std::atoi(argv[i]) : fallback;
  };
  if (kind == "cas") {
    return std::make_unique<rcons::algo::CasConsensus>(arg(1, 2));
  }
  if (kind == "tas") {
    return std::make_unique<rcons::algo::TasRacingConsensus>();
  }
  if (kind == "naive") {
    return std::make_unique<rcons::algo::NaiveRegisterConsensus>(arg(1, 2));
  }
  if (kind == "tnn") {
    const int n = arg(1, 4);
    const int np = arg(2, 2);
    return std::make_unique<rcons::algo::TnnRecoverableConsensus>(
        n, np, arg(3, np));
  }
  if (kind == "tnnwf") {
    return std::make_unique<rcons::algo::TnnWaitFreeConsensus>(arg(1, 4),
                                                               arg(2, 2));
  }
  if (kind == "propose") {
    return std::make_unique<rcons::algo::NaiveProposeConsensus>(arg(1, 2),
                                                                arg(2, 2));
  }
  if (kind == "sticky") {
    return std::make_unique<rcons::algo::StickyConsensus>(arg(1, 2));
  }
  if (kind == "recording") {
    ObjectType type;
    std::string type_error;
    if (argc < 2 || !resolve_type(argv[1], &type, &type_error)) {
      *error = "recording <type> <n> [relaxed]: " + type_error;
      return nullptr;
    }
    bool relaxed = false;
    if (argc > 3) {
      if (std::string(argv[3]) == "relaxed") {
        relaxed = true;
      } else {
        *error = std::string("recording: unknown modifier '") + argv[3] +
                 "' (the only modifier is 'relaxed')";
        return nullptr;
      }
    }
    return std::make_unique<rcons::algo::RecordingConsensus>(type, arg(2, 2),
                                                             relaxed);
  }
  *error = "unknown protocol '" + kind + "'";
  return nullptr;
}

int cmd_list() {
  for (const auto& [name, make] : catalog()) {
    const ObjectType t = make();
    std::printf("%-16s %2d values, %d ops%s\n", name.c_str(),
                t.value_count(), t.op_count(),
                t.is_readable() ? ", readable" : "");
  }
  return 0;
}

int cmd_profile(const ObjectType& type, int max_n) {
  const rcons::reduction::VerdictCache cache(
      g_cache_on ? (g_cache_dir.empty()
                        ? rcons::reduction::VerdictCache::default_directory()
                        : g_cache_dir)
                 : std::string());
  rcons::hierarchy::ProfileOptions options;
  options.threads = g_threads;
  options.mode = g_reduce ? rcons::hierarchy::SymmetryMode::kAutomorphism
                          : rcons::hierarchy::SymmetryMode::kCanonical;
  options.cache = &cache;
  rcons::analysis::BoundsReport bounds;
  if (g_bounds_on) {
    bounds = rcons::analysis::analyze_static_bounds(type);
    options.bounds = &bounds;
  }
  const rcons::hierarchy::TypeProfile p =
      rcons::hierarchy::compute_profile(type, max_n, options);
  if (g_json) {
    // The "bounds" object comes after "discerning"/"recording" so their
    // first occurrence in the document stays the level verdicts (the
    // golden fixtures are parsed by first occurrence).
    std::string bounds_json;
    if (g_bounds_on) bounds_json = ",\"bounds\":" + bounds.render_json();
    std::printf(
        "{\"type\":\"%s\",\"readable\":%s,\"max_n\":%d,"
        "\"discerning\":{\"value\":%d,\"exact\":%s},"
        "\"recording\":{\"value\":%d,\"exact\":%s}%s}\n",
        json_escape(p.type_name).c_str(), p.readable ? "true" : "false",
        max_n, p.discerning.value, p.discerning.exact ? "true" : "false",
        p.recording.value, p.recording.exact ? "true" : "false",
        bounds_json.c_str());
    return 0;
  }
  std::printf("type %s (%s)\n", p.type_name.c_str(),
              p.readable ? "readable" : "NOT readable");
  std::printf("  discerning level: %s%s\n",
              p.discerning.to_string().c_str(),
              p.readable ? "   == consensus number (Ruppert)"
                         : "   (upper bound on the consensus number)");
  std::printf("  recording level:  %s%s\n", p.recording.to_string().c_str(),
              p.readable
                  ? "   == recoverable consensus number (DFFR + Ovens)"
                  : "   (upper bound on the recoverable consensus number)");
  if (g_bounds_on) std::printf("%s", bounds.describe().c_str());
  return 0;
}

/// `explain <rule-id>`: the one-paragraph rationale from the registry.
int cmd_explain(const std::string& id) {
  for (const auto& r : rcons::analysis::all_rules()) {
    if (id == r.id) {
      std::printf("%s %s (%s)\n  %s\n\n%s\n", r.id, r.name,
                  rcons::analysis::severity_name(r.severity), r.summary,
                  r.explain);
      return 0;
    }
  }
  return fail("unknown rule id '" + id +
              "' (see `rcons_cli lint --rules` for the catalog)");
}

int cmd_witnesses(const ObjectType& type, int n, const std::string& kind_name,
                  std::size_t max_count) {
  rcons::hierarchy::WitnessKind kind =
      rcons::hierarchy::WitnessKind::kDiscerning;
  if (kind_name == "recording") {
    kind = rcons::hierarchy::WitnessKind::kRecording;
  } else if (kind_name == "nonhiding") {
    kind = rcons::hierarchy::WitnessKind::kRecordingNonhiding;
  } else if (kind_name != "discerning") {
    return fail("witness kind must be discerning|recording|nonhiding");
  }
  const auto e =
      rcons::hierarchy::enumerate_witnesses(type, n, kind, max_count);
  std::printf("%llu %s witnesses at n=%d (%llu canonical assignments "
              "tried); showing %zu:\n",
              static_cast<unsigned long long>(e.total_found),
              kind_name.c_str(), n,
              static_cast<unsigned long long>(e.assignments_tried),
              e.witnesses.size());
  for (const auto& w : e.witnesses) {
    std::printf("  %s\n", w.describe(type).c_str());
  }
  return 0;
}

/// verify: exhaustive safety (three crash modes) + recoverable
/// wait-freedom, one line (or one JSON object) per check.
///
/// Exit code: 0 when every scan completed and found nothing, 1 on any
/// violation, 3 when a scan was truncated by --max-states without finding
/// one — INCONCLUSIVE is not SAFE and must not share its exit code.
int cmd_verify(rcons::exec::Protocol& protocol, const std::string& spec) {
  using rcons::valency::CrashMode;
  using rcons::valency::LivenessVerdict;
  using rcons::valency::SafetyVerdict;
  namespace valency = rcons::valency;
  if (g_json) {
    std::fprintf(stderr, "rcons_cli: verifying protocol %s (%d threads)\n",
                 protocol.name().c_str(), g_threads);
  } else {
    std::printf("protocol %s: %d processes, %d objects\n",
                protocol.name().c_str(), protocol.process_count(),
                protocol.object_count());
  }
  bool violation = false;
  bool inconclusive = false;
  std::string json_safety;
  struct ModeRow {
    CrashMode mode;
    const char* label;  // aligned, for the text table
    const char* token;  // filesystem/JSON-safe
  };
  static constexpr ModeRow kModes[] = {
      {CrashMode::kNone, "crash-free ", "crash-free"},
      {CrashMode::kIndividual, "individual ", "individual"},
      {CrashMode::kBoth, "indiv+simul", "indiv-simul"},
  };
  for (const auto& row : kModes) {
    valency::SafetyOptions options;
    options.crash_mode = row.mode;
    options.threads = g_threads;
    options.reduce_symmetry = g_reduce;
    if (g_max_states != 0) options.max_states = g_max_states;
    // Restates check_safety_all_inputs's merge loop (including its orbit
    // reduction of input vectors) so the violating input VECTOR is in hand
    // — counterexample capture needs it, and the merged result does not
    // record it.
    valency::SafetyResult merged;
    merged.explored_fully = true;
    std::vector<int> bad_inputs;
    for (const auto& inputs :
         valency::driver_input_vectors(protocol, g_reduce)) {
      valency::SafetyResult r =
          valency::check_safety(protocol, inputs, options);
      merged.states_visited += r.states_visited;
      merged.configs_visited += r.configs_visited;
      merged.explored_fully = merged.explored_fully && r.explored_fully;
      if (!r.ok()) {
        merged.agreement_ok = r.agreement_ok;
        merged.validity_ok = r.validity_ok;
        merged.counterexample = std::move(r.counterexample);
        merged.violation = std::move(r.violation);
        bad_inputs = inputs;
        break;
      }
    }
    const SafetyVerdict verdict = valency::safety_verdict(merged);
    violation = violation || verdict == SafetyVerdict::kViolation;
    inconclusive = inconclusive || verdict == SafetyVerdict::kInconclusive;
    const std::string verdict_name(valency::safety_verdict_name(merged));
    if (g_json) {
      if (!json_safety.empty()) json_safety += ',';
      json_safety += "{\"mode\":\"" + std::string(row.token) +
                     "\",\"verdict\":\"" + verdict_name +
                     "\",\"states\":" + std::to_string(merged.states_visited);
      if (!merged.ok()) {
        json_safety +=
            ",\"violation\":\"" + json_escape(merged.violation) +
            "\",\"schedule\":\"" +
            json_escape(
                rcons::exec::schedule_to_string(*merged.counterexample)) +
            "\"";
      }
      json_safety += '}';
    } else {
      // A truncated exploration proves nothing: INCONCLUSIVE, never "SAFE".
      std::printf("  safety  [%s]: %s (%zu states)\n", row.label,
                  verdict_name.c_str(), merged.states_visited);
      if (!merged.ok()) {
        std::printf("    %s\n    schedule: %s\n", merged.violation.c_str(),
                    rcons::exec::schedule_to_string(*merged.counterexample)
                        .c_str());
      }
    }
    if (!merged.ok()) {
      if (auto c = rcons::trace::capture_safety(protocol, bad_inputs,
                                                merged)) {
        write_trace(std::move(*c), spec,
                    std::string("safety-") + row.token);
      }
    }
  }
  bool stuck = false;
  bool live_inconclusive = false;
  std::string json_liveness;
  for (const auto& inputs :
       valency::all_binary_inputs(protocol.process_count())) {
    valency::LivenessOptions options;
    options.threads = g_threads;
    options.reduce_symmetry = g_reduce;
    if (g_max_states != 0) options.max_states = g_max_states;
    const auto r =
        valency::check_recoverable_wait_freedom(protocol, inputs, options);
    switch (valency::liveness_verdict(r)) {
      case LivenessVerdict::kNotWaitFree: {
        stuck = true;
        if (auto c = rcons::trace::capture_liveness(
                protocol, inputs, r, options.solo_step_bound)) {
          std::string bits;
          for (const int b : inputs) bits += static_cast<char>('0' + b);
          write_trace(std::move(*c), spec, "liveness-i" + bits);
        }
        break;
      }
      case LivenessVerdict::kInconclusive: live_inconclusive = true; break;
      case LivenessVerdict::kWaitFree: break;
    }
    if (g_json) {
      std::string bits;
      for (const int b : inputs) bits += static_cast<char>('0' + b);
      if (!json_liveness.empty()) json_liveness += ',';
      json_liveness +=
          "{\"inputs\":\"" + bits + "\",\"verdict\":\"" +
          std::string(valency::liveness_verdict_name(r)) + "\"}";
    }
  }
  violation = violation || stuck;
  inconclusive = inconclusive || live_inconclusive;
  const char* wait_free =
      stuck ? "NO" : (live_inconclusive ? "INCONCLUSIVE" : "YES");
  const char* overall =
      violation ? "VIOLATION" : (inconclusive ? "INCONCLUSIVE" : "SAFE");
  const int code = violation ? 1 : (inconclusive ? 3 : 0);
  if (g_json) {
    std::printf("{\"protocol\":\"%s\",\"processes\":%d,\"objects\":%d,"
                "\"safety\":[%s],\"liveness\":[%s],"
                "\"recoverable_wait_freedom\":\"%s\",\"verdict\":\"%s\","
                "\"exit_code\":%d}\n",
                json_escape(protocol.name()).c_str(),
                protocol.process_count(), protocol.object_count(),
                json_safety.c_str(), json_liveness.c_str(), wait_free,
                overall, code);
  } else {
    std::printf("  recoverable wait-freedom: %s\n", wait_free);
    std::printf("  overall: %s\n", overall);
  }
  return code;
}

int cmd_critical(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto report =
      rcons::valency::find_critical_execution(protocol, inputs);
  if (!report.has_value()) {
    return fail("no critical execution found (not bivalent?)");
  }
  std::printf("%s", report->render(protocol).c_str());
  const std::string failures =
      rcons::valency::verify_section3_lemmas(protocol, *report);
  std::printf("section 3 lemma check: %s\n",
              failures.empty() ? "all verified" : failures.c_str());
  return 0;
}

int cmd_chain(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto chain =
      rcons::valency::run_theorem13_chain(protocol, inputs);
  std::printf("%s", chain.render(protocol).c_str());
  return chain.reached_recording ? 0 : 1;
}

int cmd_replay(const char* file) {
  std::ifstream in(file);
  if (!in) return fail(std::string("cannot read '") + file + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = rcons::trace::parse_counterexample(buffer.str());
  if (!parsed.ok()) {
    return fail(std::string(file) + ":" +
                std::to_string(parsed.error_line) + ": " + parsed.error);
  }
  const rcons::trace::Counterexample& c = *parsed.trace;
  if (c.protocol_spec.empty()) {
    return fail("trace carries no 'protocol:' line; replay cannot rebuild "
                "the protocol");
  }
  std::vector<std::string> tokens;
  std::istringstream spec_stream(c.protocol_spec);
  for (std::string t; spec_stream >> t;) tokens.push_back(t);
  std::vector<char*> spec_argv;
  spec_argv.reserve(tokens.size());
  for (auto& t : tokens) spec_argv.push_back(t.data());
  std::string error;
  auto protocol = make_protocol(static_cast<int>(spec_argv.size()),
                                spec_argv.data(), &error);
  if (!protocol) return fail(error);
  const rcons::trace::ReplayResult r = rcons::trace::replay(*protocol, c);
  std::printf("%s counterexample, protocol: %s\n",
              rcons::trace::counterexample_kind_name(c.kind),
              c.protocol_spec.c_str());
  if (!c.rule.empty()) std::printf("  rule: %s\n", c.rule.c_str());
  if (!c.note.empty()) std::printf("  note: %s\n", c.note.c_str());
  std::printf("%s", rcons::trace::render_timeline(*protocol,
                                                  r.timeline).c_str());
  std::printf("captured verdict: %s\n", c.verdict.c_str());
  std::printf("replayed verdict: %s\n", r.verdict.c_str());
  std::printf("captured hash: %016llx\n",
              static_cast<unsigned long long>(c.state_hash));
  std::printf("replayed hash: %016llx\n",
              static_cast<unsigned long long>(r.state_hash));
  const bool ok = r.matches(c);
  std::printf("round-trip: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

int cmd_lint(int argc, char** argv) {
  using rcons::analysis::Report;
  using rcons::analysis::Severity;

  const bool json = g_json;
  Severity threshold = Severity::kError;
  std::vector<std::string> targets;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const auto& r : rcons::analysis::all_rules()) {
        std::printf("%-6s %-26s %-8s %s\n", r.id, r.name,
                    rcons::analysis::severity_name(r.severity), r.summary);
      }
      return 0;
    }
    if (arg.rfind("--explain=", 0) == 0) {
      return cmd_explain(arg.substr(10));
    }
    if (arg.rfind("--threshold=", 0) == 0) {
      const std::string level = arg.substr(12);
      if (level == "error") {
        threshold = Severity::kError;
      } else if (level == "warning") {
        threshold = Severity::kWarning;
      } else if (level == "note") {
        threshold = Severity::kNote;
      } else {
        return fail("unknown threshold '" + level + "'");
      }
    } else if (arg == "protocol") {
      // The rest of the argv names one protocol; lint it and stop. The
      // protocol front end runs both the PL lint and the RC recovery
      // audit (DESIGN.md §8). All progress goes to stderr so
      // --format=json keeps stdout machine-parseable.
      std::string error;
      auto protocol = make_protocol(argc - i - 1, argv + i + 1, &error);
      if (!protocol) return fail(error);
      std::string spec;
      for (int j = i + 1; j < argc; ++j) {
        if (j > i + 1) spec += ' ';
        spec += argv[j];
      }
      targets.clear();
      std::fprintf(stderr, "rcons_cli: linting protocol %s (PL rules)\n",
                   protocol->name().c_str());
      Report report = rcons::analysis::lint_protocol(*protocol);
      std::fprintf(stderr,
                   "rcons_cli: auditing protocol %s (RC rules, %d threads)\n",
                   protocol->name().c_str(), g_threads);
      rcons::analysis::RecoveryAuditOptions audit_options;
      audit_options.threads = g_threads;
      auto audited =
          rcons::analysis::audit_recovery_traced(*protocol, audit_options);
      report.merge(std::move(audited.report));
      int seq = 0;
      for (auto& c : audited.counterexamples) {
        std::string rule = c.rule;
        for (auto& ch : rule) {
          ch = static_cast<char>(
              std::tolower(static_cast<unsigned char>(ch)));
        }
        write_trace(std::move(c), spec,
                    "rc-" + std::to_string(seq++) + "-" + rule);
      }
      report.canonicalize();
      std::printf("%s", json ? report.render_json().c_str()
                             : report.render_text().c_str());
      if (json) std::printf("\n");
      return report.has_findings_at_least(threshold) ? 1 : 0;
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown lint flag '" + arg + "'");
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    return fail("lint needs at least one <type>, .type file, or "
                "'protocol <spec...>'");
  }

  Report report;
  for (const std::string& target : targets) {
    // Files get the text front end (sees duplicate rows and `initial`);
    // catalog names lint the built ObjectType directly. Both also run the
    // SA bounds pass: its findings are structural facts about the type and
    // belong in the same report (all kNote, so they never gate a run at
    // the default threshold).
    if (catalog().count(target) != 0) {
      const ObjectType type = catalog().at(target)();
      report.merge(rcons::analysis::lint_type(
          type, rcons::analysis::TypeLintOptions{}));
      report.merge(rcons::analysis::analyze_static_bounds(type).findings);
      continue;
    }
    std::ifstream in(target);
    if (!in) {
      return fail("unknown type '" + target + "' (not a catalog name; file "
                  "not readable)");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    report.merge(rcons::analysis::lint_type_text(buffer.str(), target));
    const rcons::spec::ParseResult parsed =
        rcons::spec::parse_type(buffer.str());
    if (parsed.ok()) {
      report.merge(
          rcons::analysis::analyze_static_bounds(*parsed.type, target)
              .findings);
    }
  }
  report.canonicalize();
  std::printf("%s", json ? report.render_json().c_str()
                         : report.render_text().c_str());
  if (json) std::printf("\n");
  return report.has_findings_at_least(threshold) ? 1 : 0;
}

int cmd_search(int restarts, int mutations, std::uint64_t seed) {
  rcons::hierarchy::MachineSearchOptions options;
  options.restarts = restarts;
  options.mutations_per_restart = mutations;
  options.seed = seed;
  options.threads = g_threads;
  options.use_bounds = g_bounds_on;
  const auto r = rcons::hierarchy::search_gap_machines(options);
  std::printf("evaluated %llu machines; best gap %d (discerning %s, "
              "recording %s)\n",
              static_cast<unsigned long long>(r.machines_evaluated),
              r.best_gap, r.best_profile.discerning.to_string().c_str(),
              r.best_profile.recording.to_string().c_str());
  if (r.best_gap >= 1) {
    std::printf("%s", rcons::spec::serialize_type(r.best_type).c_str());
  }
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rcons_cli "
                 "list|show|export|dot|profile|witnesses|verify|critical|"
                 "search|lint|explain|replay ...\n"
                 "(see the header of tools/rcons_cli.cpp)\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "lint") return cmd_lint(argc - 2, argv + 2);
  if (cmd == "explain") {
    if (argc < 3) return fail("explain <rule-id> (e.g. TS001, RC002, SA007)");
    return cmd_explain(argv[2]);
  }
  if (cmd == "replay") {
    if (argc < 3) return fail("replay <file.trace>");
    return cmd_replay(argv[2]);
  }
  if (cmd == "search") {
    return cmd_search(argc > 2 ? std::atoi(argv[2]) : 10,
                      argc > 3 ? std::atoi(argv[3]) : 200,
                      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                               : 1);
  }
  if (cmd == "verify" || cmd == "critical" || cmd == "chain") {
    std::string error;
    auto protocol = make_protocol(argc - 2, argv + 2, &error);
    if (!protocol) return fail(error);
    if (cmd == "verify") {
      std::string spec;
      for (int i = 2; i < argc; ++i) {
        if (i > 2) spec += ' ';
        spec += argv[i];
      }
      return cmd_verify(*protocol, spec);
    }
    if (cmd == "chain") return cmd_chain(*protocol);
    return cmd_critical(*protocol);
  }

  if (argc < 3) return fail("command '" + cmd + "' needs a type argument");
  ObjectType type;
  std::string error;
  if (!resolve_type(argv[2], &type, &error)) return fail(error);

  if (cmd == "show") {
    std::printf("%s", type.describe().c_str());
    return 0;
  }
  if (cmd == "export") {
    std::printf("%s", rcons::spec::serialize_type(type).c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::printf("%s", type.to_dot().c_str());
    return 0;
  }
  if (cmd == "profile") {
    return cmd_profile(type, argc > 3 ? std::atoi(argv[3]) : 5);
  }
  if (cmd == "witnesses") {
    if (argc < 4) return fail("witnesses <type> <n> [kind] [max]");
    return cmd_witnesses(type, std::atoi(argv[3]),
                         argc > 4 ? argv[4] : "discerning",
                         argc > 5 ? static_cast<std::size_t>(std::atoll(argv[5]))
                                  : 8);
  }
  return fail("unknown command '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the global flags (any position) before dispatch.
  g_threads = rcons::util::hardware_threads();
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return fail("--threads wants a count >= 0");
      }
      const int threads = std::atoi(value.c_str());
      g_threads = threads == 0 ? rcons::util::hardware_threads() : threads;
      continue;
    }
    if (arg.rfind("--max-states=", 0) == 0) {
      const std::string value = arg.substr(13);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return fail("--max-states wants a state count >= 1");
      }
      g_max_states = static_cast<std::size_t>(
          std::strtoull(value.c_str(), nullptr, 10));
      if (g_max_states == 0) return fail("--max-states wants a count >= 1");
      continue;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace_out = arg.substr(12);
      if (g_trace_out.empty()) return fail("--trace-out wants a directory");
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      g_metrics_out = arg.substr(14);
      if (g_metrics_out.empty()) return fail("--metrics-out wants a file");
      continue;
    }
    if (arg.rfind("--spans-out=", 0) == 0) {
      g_spans_out = arg.substr(12);
      if (g_spans_out.empty()) return fail("--spans-out wants a file");
      continue;
    }
    if (arg.rfind("--reduce=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "symmetry") {
        g_reduce = true;
      } else if (value == "none") {
        g_reduce = false;
      } else {
        return fail("unknown reduction '" + value + "' (symmetry|none)");
      }
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      const std::string value = arg.substr(8);
      if (value == "on") {
        g_cache_on = true;
      } else if (value == "off") {
        g_cache_on = false;
      } else {
        return fail("unknown cache mode '" + value + "' (on|off)");
      }
      continue;
    }
    if (arg.rfind("--bounds=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "on") {
        g_bounds_on = true;
      } else if (value == "off") {
        g_bounds_on = false;
      } else {
        return fail("unknown bounds mode '" + value + "' (on|off)");
      }
      continue;
    }
    if (arg.rfind("--cache-dir=", 0) == 0) {
      g_cache_dir = arg.substr(12);
      if (g_cache_dir.empty()) return fail("--cache-dir wants a directory");
      continue;
    }
    if (arg == "--format=json") {
      g_json = true;
      continue;
    }
    if (arg == "--format=text") {
      g_json = false;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      return fail("unknown format '" + arg.substr(9) + "' (json|text)");
    }
    args.push_back(argv[i]);
  }
  args.push_back(nullptr);
  argc = static_cast<int>(args.size()) - 1;
  argv = args.data();
  const int code = dispatch(argc, argv);
  // Metrics spill even on failure exits: the observability of a run that
  // found a violation (or died inconclusive) is the interesting case.
  if (!g_metrics_out.empty() &&
      spill_file(g_metrics_out, rcons::trace::metrics().to_json() + "\n")) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", g_metrics_out.c_str());
  }
  if (!g_spans_out.empty() &&
      spill_file(g_spans_out,
                 rcons::trace::metrics().spans_to_chrome_json())) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", g_spans_out.c_str());
  }
  return code;
}
