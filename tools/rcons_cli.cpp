// rcons_cli — command-line driver for the rcons library.
//
//   rcons_cli list
//   rcons_cli show     <type>            describe a type's state machine
//   rcons_cli export   <type>            emit the .type interchange format
//   rcons_cli dot      <type>            emit Graphviz dot
//   rcons_cli profile  <type> [max_n]    compute discerning/recording levels
//   rcons_cli witnesses <type> <n> [discerning|recording|nonhiding] [max]
//   rcons_cli verify   <protocol...>     exhaustively model-check a protocol
//       protocols: cas <n> | tas | naive <n> | sticky <n>
//                  | propose <m> <procs> | tnn <n> <n'> <procs>
//                  | tnnwf <n> <n'> | recording <type> <n>
//   rcons_cli critical <protocol...>     valency trace (Figures 1-2 style)
//   rcons_cli search   [restarts] [mutations] [seed]
//   rcons_cli lint     [--format=text|json] [--threshold=error|warning|note]
//                      <type>... | protocol <protocol...>
//                                        static analysis (see DESIGN.md);
//                                        protocol targets also run the RC
//                                        crash-recovery audit;
//                                        exits 1 on findings >= threshold
//   rcons_cli lint --rules               print the rule catalog
//
// The global flag --threads=N (any position) selects exploration
// parallelism for verify/profile/search. The default is the hardware
// thread count; --threads=1 runs the original serial engines. Results are
// bit-identical for every thread count (see DESIGN.md §7).
//
// <type> is either a catalog name (see `list`) or a path to a .type file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algo/cas_consensus.hpp"
#include "analysis/analysis.hpp"
#include "algo/naive_register.hpp"
#include "algo/propose_consensus.hpp"
#include "algo/recording_consensus.hpp"
#include "algo/sticky_consensus.hpp"
#include "algo/tas_racing.hpp"
#include "algo/tnn_protocols.hpp"
#include "hierarchy/consensus_number.hpp"
#include "hierarchy/search.hpp"
#include "hierarchy/witnesses.hpp"
#include "spec/catalog.hpp"
#include "spec/paper_types.hpp"
#include "spec/serialize.hpp"
#include "util/parallel.hpp"
#include "valency/critical.hpp"
#include "valency/lemmas.hpp"
#include "valency/model_checker.hpp"
#include "valency/theorem13.hpp"

namespace {

using rcons::spec::ObjectType;

/// Exploration threads for verify/profile/search, from --threads=N.
/// Initialized in main to the hardware thread count.
int g_threads = 1;

const std::map<std::string, std::function<ObjectType()>>& catalog() {
  static const auto* kCatalog =
      new std::map<std::string, std::function<ObjectType()>>{
          {"register2", [] { return rcons::spec::make_register(2); }},
          {"register3", [] { return rcons::spec::make_register(3); }},
          {"tas", [] { return rcons::spec::make_test_and_set(); }},
          {"swap2", [] { return rcons::spec::make_swap(2); }},
          {"swap3", [] { return rcons::spec::make_swap(3); }},
          {"faa4", [] { return rcons::spec::make_fetch_and_add(4); }},
          {"fai3",
           [] { return rcons::spec::make_fetch_and_increment_saturating(3); }},
          {"cas2", [] { return rcons::spec::make_cas(2); }},
          {"cas3", [] { return rcons::spec::make_cas(3); }},
          {"sticky2", [] { return rcons::spec::make_sticky_bit(); }},
          {"sticky3", [] { return rcons::spec::make_sticky(3); }},
          {"consensus2", [] { return rcons::spec::make_consensus_object(2); }},
          {"consensus3", [] { return rcons::spec::make_consensus_object(3); }},
          {"queue2", [] { return rcons::spec::make_queue(2); }},
          {"readable_queue2",
           [] { return rcons::spec::make_readable_queue(2); }},
          {"stack2", [] { return rcons::spec::make_stack(2); }},
          {"peek_queue2", [] { return rcons::spec::make_peek_queue(2); }},
          {"t31", [] { return rcons::spec::make_tnn(3, 1); }},
          {"t42", [] { return rcons::spec::make_tnn(4, 2); }},
          {"t52", [] { return rcons::spec::make_tnn(5, 2); }},
          {"t64", [] { return rcons::spec::make_tnn(6, 4); }},
          {"x4", [] { return rcons::spec::make_xn(4); }},
          {"x5", [] { return rcons::spec::make_xn(5); }},
      };
  return *kCatalog;
}

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_cli: %s\n", message.c_str());
  return 2;
}

/// Resolves a catalog name or a .type file path.
bool resolve_type(const std::string& what, ObjectType* out,
                  std::string* error) {
  const auto it = catalog().find(what);
  if (it != catalog().end()) {
    *out = it->second();
    return true;
  }
  std::ifstream in(what);
  if (!in) {
    *error = "unknown type '" + what + "' (not a catalog name; file not "
             "readable). Try `rcons_cli list`.";
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const rcons::spec::ParseResult parsed =
      rcons::spec::parse_type(buffer.str());
  if (!parsed.ok()) {
    *error = what + ":" + std::to_string(parsed.error_line) + ": " +
             parsed.error;
    return false;
  }
  *out = *parsed.type;
  return true;
}

std::unique_ptr<rcons::exec::Protocol> make_protocol(int argc, char** argv,
                                                     std::string* error) {
  if (argc < 1) {
    *error = "missing protocol";
    return nullptr;
  }
  const std::string kind = argv[0];
  const auto arg = [&](int i, int fallback) {
    return argc > i ? std::atoi(argv[i]) : fallback;
  };
  if (kind == "cas") {
    return std::make_unique<rcons::algo::CasConsensus>(arg(1, 2));
  }
  if (kind == "tas") {
    return std::make_unique<rcons::algo::TasRacingConsensus>();
  }
  if (kind == "naive") {
    return std::make_unique<rcons::algo::NaiveRegisterConsensus>(arg(1, 2));
  }
  if (kind == "tnn") {
    const int n = arg(1, 4);
    const int np = arg(2, 2);
    return std::make_unique<rcons::algo::TnnRecoverableConsensus>(
        n, np, arg(3, np));
  }
  if (kind == "tnnwf") {
    return std::make_unique<rcons::algo::TnnWaitFreeConsensus>(arg(1, 4),
                                                               arg(2, 2));
  }
  if (kind == "propose") {
    return std::make_unique<rcons::algo::NaiveProposeConsensus>(arg(1, 2),
                                                                arg(2, 2));
  }
  if (kind == "sticky") {
    return std::make_unique<rcons::algo::StickyConsensus>(arg(1, 2));
  }
  if (kind == "recording") {
    ObjectType type;
    std::string type_error;
    if (argc < 2 || !resolve_type(argv[1], &type, &type_error)) {
      *error = "recording <type> <n>: " + type_error;
      return nullptr;
    }
    return std::make_unique<rcons::algo::RecordingConsensus>(type, arg(2, 2));
  }
  *error = "unknown protocol '" + kind + "'";
  return nullptr;
}

int cmd_list() {
  for (const auto& [name, make] : catalog()) {
    const ObjectType t = make();
    std::printf("%-16s %2d values, %d ops%s\n", name.c_str(),
                t.value_count(), t.op_count(),
                t.is_readable() ? ", readable" : "");
  }
  return 0;
}

int cmd_profile(const ObjectType& type, int max_n) {
  const rcons::hierarchy::TypeProfile p =
      rcons::hierarchy::compute_profile(type, max_n, g_threads);
  std::printf("type %s (%s)\n", p.type_name.c_str(),
              p.readable ? "readable" : "NOT readable");
  std::printf("  discerning level: %s%s\n",
              p.discerning.to_string().c_str(),
              p.readable ? "   == consensus number (Ruppert)"
                         : "   (upper bound on the consensus number)");
  std::printf("  recording level:  %s%s\n", p.recording.to_string().c_str(),
              p.readable
                  ? "   == recoverable consensus number (DFFR + Ovens)"
                  : "   (upper bound on the recoverable consensus number)");
  return 0;
}

int cmd_witnesses(const ObjectType& type, int n, const std::string& kind_name,
                  std::size_t max_count) {
  rcons::hierarchy::WitnessKind kind =
      rcons::hierarchy::WitnessKind::kDiscerning;
  if (kind_name == "recording") {
    kind = rcons::hierarchy::WitnessKind::kRecording;
  } else if (kind_name == "nonhiding") {
    kind = rcons::hierarchy::WitnessKind::kRecordingNonhiding;
  } else if (kind_name != "discerning") {
    return fail("witness kind must be discerning|recording|nonhiding");
  }
  const auto e =
      rcons::hierarchy::enumerate_witnesses(type, n, kind, max_count);
  std::printf("%llu %s witnesses at n=%d (%llu canonical assignments "
              "tried); showing %zu:\n",
              static_cast<unsigned long long>(e.total_found),
              kind_name.c_str(), n,
              static_cast<unsigned long long>(e.assignments_tried),
              e.witnesses.size());
  for (const auto& w : e.witnesses) {
    std::printf("  %s\n", w.describe(type).c_str());
  }
  return 0;
}

int cmd_verify(rcons::exec::Protocol& protocol) {
  std::printf("protocol %s: %d processes, %d objects\n",
              protocol.name().c_str(), protocol.process_count(),
              protocol.object_count());
  for (const auto mode : {rcons::valency::CrashMode::kNone,
                          rcons::valency::CrashMode::kIndividual,
                          rcons::valency::CrashMode::kBoth}) {
    rcons::valency::SafetyOptions options;
    options.crash_mode = mode;
    options.threads = g_threads;
    const auto r = rcons::valency::check_safety_all_inputs(protocol, options);
    const char* mode_name =
        mode == rcons::valency::CrashMode::kNone ? "crash-free " :
        mode == rcons::valency::CrashMode::kIndividual ? "individual " :
                                                         "indiv+simul";
    // A truncated exploration proves nothing: INCONCLUSIVE, never "SAFE".
    std::printf("  safety  [%s]: %s (%zu states)\n", mode_name,
                std::string(rcons::valency::safety_verdict_name(r)).c_str(),
                r.states_visited);
    if (!r.ok()) {
      std::printf("    %s\n    schedule: %s\n", r.violation.c_str(),
                  rcons::exec::schedule_to_string(*r.counterexample).c_str());
    }
  }
  bool stuck = false;
  bool inconclusive = false;
  for (const auto& inputs :
       rcons::valency::all_binary_inputs(protocol.process_count())) {
    rcons::valency::LivenessOptions options;
    options.threads = g_threads;
    const auto r =
        rcons::valency::check_recoverable_wait_freedom(protocol, inputs,
                                                       options);
    switch (rcons::valency::liveness_verdict(r)) {
      case rcons::valency::LivenessVerdict::kNotWaitFree: stuck = true; break;
      case rcons::valency::LivenessVerdict::kInconclusive:
        inconclusive = true;
        break;
      case rcons::valency::LivenessVerdict::kWaitFree: break;
    }
  }
  std::printf("  recoverable wait-freedom: %s\n",
              stuck ? "NO" : (inconclusive ? "INCONCLUSIVE" : "YES"));
  return 0;
}

int cmd_critical(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto report =
      rcons::valency::find_critical_execution(protocol, inputs);
  if (!report.has_value()) {
    return fail("no critical execution found (not bivalent?)");
  }
  std::printf("%s", report->render(protocol).c_str());
  const std::string failures =
      rcons::valency::verify_section3_lemmas(protocol, *report);
  std::printf("section 3 lemma check: %s\n",
              failures.empty() ? "all verified" : failures.c_str());
  return 0;
}

int cmd_chain(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto chain =
      rcons::valency::run_theorem13_chain(protocol, inputs);
  std::printf("%s", chain.render(protocol).c_str());
  return chain.reached_recording ? 0 : 1;
}

int cmd_lint(int argc, char** argv) {
  using rcons::analysis::Report;
  using rcons::analysis::Severity;

  bool json = false;
  Severity threshold = Severity::kError;
  std::vector<std::string> targets;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      for (const auto& r : rcons::analysis::all_rules()) {
        std::printf("%-6s %-26s %-8s %s\n", r.id, r.name,
                    rcons::analysis::severity_name(r.severity), r.summary);
      }
      return 0;
    }
    if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format=text") {
      json = false;
    } else if (arg.rfind("--format=", 0) == 0) {
      return fail("unknown format '" + arg.substr(9) + "' (json|text)");
    } else if (arg.rfind("--threshold=", 0) == 0) {
      const std::string level = arg.substr(12);
      if (level == "error") {
        threshold = Severity::kError;
      } else if (level == "warning") {
        threshold = Severity::kWarning;
      } else if (level == "note") {
        threshold = Severity::kNote;
      } else {
        return fail("unknown threshold '" + level + "'");
      }
    } else if (arg == "protocol") {
      // The rest of the argv names one protocol; lint it and stop. The
      // protocol front end runs both the PL lint and the RC recovery
      // audit (DESIGN.md §8). All progress goes to stderr so
      // --format=json keeps stdout machine-parseable.
      std::string error;
      auto protocol = make_protocol(argc - i - 1, argv + i + 1, &error);
      if (!protocol) return fail(error);
      targets.clear();
      targets.push_back("protocol");
      std::fprintf(stderr, "rcons_cli: linting protocol %s (PL rules)\n",
                   protocol->name().c_str());
      Report report = rcons::analysis::lint_protocol(*protocol);
      std::fprintf(stderr,
                   "rcons_cli: auditing protocol %s (RC rules, %d threads)\n",
                   protocol->name().c_str(), g_threads);
      rcons::analysis::RecoveryAuditOptions audit_options;
      audit_options.threads = g_threads;
      report.merge(
          rcons::analysis::audit_recovery(*protocol, audit_options));
      std::printf("%s", json ? report.render_json().c_str()
                             : report.render_text().c_str());
      if (json) std::printf("\n");
      return report.has_findings_at_least(threshold) ? 1 : 0;
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown lint flag '" + arg + "'");
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    return fail("lint needs at least one <type>, .type file, or "
                "'protocol <spec...>'");
  }

  Report report;
  for (const std::string& target : targets) {
    // Files get the text front end (sees duplicate rows and `initial`);
    // catalog names lint the built ObjectType directly.
    if (catalog().count(target) != 0) {
      report.merge(rcons::analysis::lint_type(catalog().at(target)(),
                                              rcons::analysis::TypeLintOptions{}));
      continue;
    }
    std::ifstream in(target);
    if (!in) {
      return fail("unknown type '" + target + "' (not a catalog name; file "
                  "not readable)");
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    report.merge(rcons::analysis::lint_type_text(buffer.str(), target));
  }
  std::printf("%s", json ? report.render_json().c_str()
                         : report.render_text().c_str());
  if (json) std::printf("\n");
  return report.has_findings_at_least(threshold) ? 1 : 0;
}

int cmd_search(int restarts, int mutations, std::uint64_t seed) {
  rcons::hierarchy::MachineSearchOptions options;
  options.restarts = restarts;
  options.mutations_per_restart = mutations;
  options.seed = seed;
  options.threads = g_threads;
  const auto r = rcons::hierarchy::search_gap_machines(options);
  std::printf("evaluated %llu machines; best gap %d (discerning %s, "
              "recording %s)\n",
              static_cast<unsigned long long>(r.machines_evaluated),
              r.best_gap, r.best_profile.discerning.to_string().c_str(),
              r.best_profile.recording.to_string().c_str());
  if (r.best_gap >= 1) {
    std::printf("%s", rcons::spec::serialize_type(r.best_type).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the global --threads=N flag (any position) before dispatch.
  g_threads = rcons::util::hardware_threads();
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (value.empty() ||
          value.find_first_not_of("0123456789") != std::string::npos) {
        return fail("--threads wants a count >= 0");
      }
      const int threads = std::atoi(value.c_str());
      g_threads = threads == 0 ? rcons::util::hardware_threads() : threads;
      continue;
    }
    args.push_back(argv[i]);
  }
  args.push_back(nullptr);
  argc = static_cast<int>(args.size()) - 1;
  argv = args.data();
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rcons_cli "
                 "list|show|export|dot|profile|witnesses|verify|critical|"
                 "search|lint ...\n(see the header of tools/rcons_cli.cpp)\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "lint") return cmd_lint(argc - 2, argv + 2);
  if (cmd == "search") {
    return cmd_search(argc > 2 ? std::atoi(argv[2]) : 10,
                      argc > 3 ? std::atoi(argv[3]) : 200,
                      argc > 4 ? static_cast<std::uint64_t>(std::atoll(argv[4]))
                               : 1);
  }
  if (cmd == "verify" || cmd == "critical" || cmd == "chain") {
    std::string error;
    auto protocol = make_protocol(argc - 2, argv + 2, &error);
    if (!protocol) return fail(error);
    if (cmd == "verify") return cmd_verify(*protocol);
    if (cmd == "chain") return cmd_chain(*protocol);
    return cmd_critical(*protocol);
  }

  if (argc < 3) return fail("command '" + cmd + "' needs a type argument");
  ObjectType type;
  std::string error;
  if (!resolve_type(argv[2], &type, &error)) return fail(error);

  if (cmd == "show") {
    std::printf("%s", type.describe().c_str());
    return 0;
  }
  if (cmd == "export") {
    std::printf("%s", rcons::spec::serialize_type(type).c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::printf("%s", type.to_dot().c_str());
    return 0;
  }
  if (cmd == "profile") {
    return cmd_profile(type, argc > 3 ? std::atoi(argv[3]) : 5);
  }
  if (cmd == "witnesses") {
    if (argc < 4) return fail("witnesses <type> <n> [kind] [max]");
    return cmd_witnesses(type, std::atoi(argv[3]),
                         argc > 4 ? argv[4] : "discerning",
                         argc > 5 ? static_cast<std::size_t>(std::atoll(argv[5]))
                                  : 8);
  }
  return fail("unknown command '" + cmd + "'");
}
