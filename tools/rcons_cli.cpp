// rcons_cli — command-line driver for the rcons library.
//
//   rcons_cli list
//   rcons_cli show     <type>            describe a type's state machine
//   rcons_cli export   <type>            emit the .type interchange format
//   rcons_cli dot      <type>            emit Graphviz dot
//   rcons_cli profile  <type> [max_n]    compute discerning/recording levels
//   rcons_cli witnesses <type> <n> [discerning|recording|nonhiding] [max]
//   rcons_cli verify   <protocol...>     exhaustively model-check a protocol
//       protocols: cas <n> | tas | naive <n> | sticky <n>
//                  | propose <m> <procs> | tnn <n> <n'> <procs>
//                  | tnnwf <n> <n'> | recording <type> <n> [relaxed]
//       ("relaxed" is the fault-injection spelling: proposal-register
//        writes become unpersisted invokes, the RC004 fixture)
//   rcons_cli critical <protocol...>     valency trace (Figures 1-2 style)
//   rcons_cli search   [restarts] [mutations] [seed]
//                      [--shards=K --shard=I]
//                                        randomized gap search; with
//                                        --shards, this invocation climbs
//                                        only the restarts whose initial
//                                        machine fingerprints to shard I
//                                        (disjoint across shards, stable
//                                        across platforms and runs)
//   rcons_cli lint     [--threshold=error|warning|note]
//                      <type>... | protocol <protocol...>
//                                        static analysis (see DESIGN.md);
//                                        type targets also run the SA
//                                        bounds pass, protocol targets the
//                                        RC crash-recovery audit; findings
//                                        print in canonical order (rule,
//                                        subject, location);
//                                        exits 1 on findings >= threshold
//   rcons_cli lint --rules               print the rule catalog
//   rcons_cli lint --explain=RULE        same as `explain RULE`
//   rcons_cli explain  <rule-id>         one-paragraph explanation of a
//                                        lint/audit/bounds rule (TS/PL/RC/SA)
//   rcons_cli order    <a> <b>           certified simulation analysis of a
//                                        type pair (SA009-SA012, DESIGN.md
//                                        §13): each reported relation
//                                        carries a machine-checked
//                                        certificate; exits 0 whether or
//                                        not a relation exists
//   rcons_cli order --all <targets...> [--max-n=N] [--dot-out=FILE]
//                                        catalog mode: builds the
//                                        implements-lattice over every
//                                        target (directories expand to
//                                        their *.type files), profiles each
//                                        node with lattice pruning, seeds
//                                        the verdict cache with the implied
//                                        brackets, and prints the dominance
//                                        graph (--dot-out spills Graphviz)
//   rcons_cli replay   <file.trace>      re-execute a captured
//                                        counterexample deterministically,
//                                        print its timeline, and check the
//                                        round-trip guarantee (identical
//                                        verdict + state hash; DESIGN.md §9)
//   rcons_cli hunt     --checkpoint-dir=DIR [--shards=K --shard=I]
//                      [--resume] [--max-values=V] [--max-ops=O]
//                      [--max-responses=R] [--max-n=N] [--budget=B]
//                      [--checkpoint-interval=C]
//                                        one shard of the landscape
//                                        campaign (DESIGN.md §15): walk
//                                        every deterministic readable
//                                        machine in the parameter box,
//                                        profile each canonical form whose
//                                        fingerprint hashes to this shard,
//                                        and checkpoint progress to
//                                        DIR/shard-I-of-K.hunt (atomic
//                                        rename; kill -9 safe). --resume
//                                        continues from the checkpoint;
//                                        --budget=B stops after profiling
//                                        B new forms (exit 3, resumable).
//                                        Merge shard databases with
//                                        tools/rcons_hunt_merge. The env
//                                        var RCONS_HUNT_KILL_AFTER=N
//                                        SIGKILLs the process after the
//                                        Nth visited candidate (the crash
//                                        battery's injection point).
//   rcons_cli serve    (--socket=PATH | --port=N) [--workers=N]
//                      [--queue-depth=N]
//                                        long-running verdict daemon
//                                        (DESIGN.md §12): newline-delimited
//                                        JSON requests over a Unix or
//                                        127.0.0.1 TCP socket, answering
//                                        profile/verify/lint with the same
//                                        documents --format=json prints.
//                                        --port=0 binds an ephemeral port
//                                        (reported on stderr). Runs until
//                                        SIGINT/SIGTERM. The global flags
//                                        below set the daemon's engine
//                                        defaults (--max-states becomes the
//                                        per-request budget cap).
//
// Global flags (any position):
//   --threads=N      exploration parallelism for verify/profile/search/
//                    lint-protocol. Default: the hardware thread count;
//                    --threads=1 runs the original serial engines;
//                    --threads=0 spells "hardware thread count" explicitly;
//                    negative or non-numeric counts are usage errors
//                    (exit 2). Results are bit-identical for every thread
//                    count (DESIGN.md §7).
//   --backend=B      exec stepper for verify/profile/serve (DESIGN.md
//                    §14). B = interp (default): ObjectType::apply; B =
//                    aot: the compiled branch-free delta tables from
//                    rcons_codegen (types without a compiled stepper get
//                    one built and verified at startup). Verdicts,
//                    witnesses, counterexamples, and stats are
//                    bit-identical across backends — only speed changes.
//   --format=json    machine-readable stdout for verify, profile, lint,
//                    order, and explain (one JSON document; all progress
//                    goes to stderr)
//   --trace-out=DIR  write one replayable .trace file per safety/liveness/
//                    RC-audit violation into DIR (created if missing)
//   --metrics-out=F  after the command, write the metrics registry as one
//                    JSON document to F
//   --spans-out=F    after the command, write phase spans as a
//                    chrome://tracing-compatible JSON array to F
//   --max-states=N   exploration state bound for verify (per input vector;
//                    a truncated scan reports INCONCLUSIVE, never SAFE)
//   --reduce=M       symmetry reduction (DESIGN.md §10). M = symmetry
//                    (default): verify quotients process-symmetric
//                    protocols by the input-stabilizer and profile prunes
//                    assignment orbits under the type's automorphism group;
//                    M = none restores the unreduced engines. Verdicts are
//                    identical either way; state/assignment counts differ.
//   --cache=on|off   persistent verdict cache for profile (default: on).
//   --bounds=on|off  static pre-verdict bounds for profile (default: on).
//                    The SA pass (DESIGN.md §11) brackets both levels
//                    before any exact decider runs; decided per-n verdicts
//                    are skipped and the rest run on the bounds quotient.
//                    Levels are identical either way — only the number of
//                    decider runs (and the `"bounds"` JSON block) changes.
//   --cache-dir=DIR  cache location (default: $XDG_CACHE_HOME/rcons or
//                    $HOME/.cache/rcons). Entries are keyed by the
//                    canonical type, so isomorphic types share entries;
//                    corrupt or stale files are skipped and recomputed.
//
// Exit codes: 0 = ok/SAFE, 1 = violation/findings/round-trip mismatch,
// 2 = usage error, 3 = INCONCLUSIVE (verify only: the scan was truncated
// by --max-states and proves nothing either way).
//
// <type> is either a catalog name (see `list`) or a path to a .type file.
//
// The profile/verify/lint COMMAND CORES live in src/serve/commands.* and
// are shared with the rcons-serve daemon, so the daemon's responses stay
// byte-identical to this CLI's --format=json output by construction. This
// file owns argv parsing, stdout/stderr, --trace-out spilling, and exits.
#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/analysis.hpp"
#include "campaign/campaign.hpp"
#include "exec/backend.hpp"
#include "hierarchy/search.hpp"
#include "hierarchy/witnesses.hpp"
#include "reduction/verdict_cache.hpp"
#include "serve/commands.hpp"
#include "serve/server.hpp"
#include "spec/serialize.hpp"
#include "trace/counterexample.hpp"
#include "trace/metrics.hpp"
#include "trace/replay.hpp"
#include "util/numeric.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"
#include "valency/critical.hpp"
#include "valency/lemmas.hpp"
#include "valency/theorem13.hpp"

namespace {

using rcons::spec::ObjectType;

/// Exploration threads for verify/profile/search, from --threads=N.
/// Initialized in main to the hardware thread count.
int g_threads = 1;

/// Global output flags (see the file header). Empty string = disabled.
std::string g_trace_out;
std::string g_metrics_out;
std::string g_spans_out;
std::size_t g_max_states = 0;  // 0 = engine defaults
bool g_json = false;           // --format=json (verify, profile, and lint)
bool g_reduce = true;          // --reduce=symmetry|none
bool g_cache_on = true;        // --cache=on|off (profile verdict cache)
bool g_bounds_on = true;       // --bounds=on|off (static pre-verdict pass)
std::string g_cache_dir;       // --cache-dir=DIR; empty = default location
rcons::exec::Backend g_backend =
    rcons::exec::Backend::kInterp;  // --backend=interp|aot

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_cli: %s\n", message.c_str());
  return 2;
}

/// The engine knobs every command core takes, from the global flags.
rcons::serve::EngineOptions engine_options() {
  rcons::serve::EngineOptions options;
  options.threads = g_threads;
  options.reduce = g_reduce;
  options.bounds = g_bounds_on;
  options.max_states = g_max_states;
  options.backend = g_backend;
  return options;
}

/// Writes `content` to `path`, creating parent directories. Reports (to
/// stderr) and returns false on failure instead of aborting the run: output
/// spilling is observability, never correctness.
bool spill_file(const std::string& path, const std::string& content) {
  std::error_code ec;
  const std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "rcons_cli: cannot write '%s'\n", path.c_str());
    return false;
  }
  out << content;
  return true;
}

/// Writes the command's captured counterexamples under --trace-out as
/// `<stem>.trace` (the cores stamp the protocol spec, so `rcons_cli
/// replay` can rebuild the protocol). No-op when --trace-out is unset.
void write_traces(const std::vector<rcons::serve::CapturedTrace>& captures) {
  if (g_trace_out.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(g_trace_out, ec);
  for (const auto& c : captures) {
    const std::string path = g_trace_out + "/" + c.stem + ".trace";
    if (spill_file(path, rcons::trace::serialize_counterexample(c.trace))) {
      std::fprintf(stderr, "rcons_cli: wrote %s\n", path.c_str());
    }
  }
}

/// Prints a command core's result per --format and spills its captures.
int emit(const rcons::serve::CommandResult& result) {
  if (result.exit_code == 2) return fail(result.error);
  if (g_json) {
    std::printf("%s\n", result.json.c_str());
  } else {
    std::printf("%s", result.text.c_str());
  }
  write_traces(result.captures);
  return result.exit_code;
}

std::unique_ptr<rcons::exec::Protocol> make_protocol(int argc, char** argv,
                                                     std::string* error) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) tokens.emplace_back(argv[i]);
  return rcons::serve::make_protocol(tokens, error);
}

int cmd_list() {
  for (const auto& [name, make] : rcons::serve::type_catalog()) {
    const ObjectType t = make();
    std::printf("%-16s %2d values, %d ops%s\n", name.c_str(),
                t.value_count(), t.op_count(),
                t.is_readable() ? ", readable" : "");
  }
  return 0;
}

int cmd_profile(const ObjectType& type, int max_n) {
  const rcons::reduction::VerdictCache cache(
      g_cache_on ? (g_cache_dir.empty()
                        ? rcons::reduction::VerdictCache::default_directory()
                        : g_cache_dir)
                 : std::string());
  rcons::serve::EngineOptions options = engine_options();
  options.cache = &cache;
  return emit(rcons::serve::run_profile(type, max_n, options));
}

/// `explain <rule-id>`: the one-paragraph rationale from the registry.
int cmd_explain(const std::string& id) {
  return emit(rcons::serve::run_explain(id));
}

int cmd_witnesses(const ObjectType& type, int n, const std::string& kind_name,
                  std::size_t max_count) {
  rcons::hierarchy::WitnessKind kind =
      rcons::hierarchy::WitnessKind::kDiscerning;
  if (kind_name == "recording") {
    kind = rcons::hierarchy::WitnessKind::kRecording;
  } else if (kind_name == "nonhiding") {
    kind = rcons::hierarchy::WitnessKind::kRecordingNonhiding;
  } else if (kind_name != "discerning") {
    return fail("witness kind must be discerning|recording|nonhiding");
  }
  const auto e =
      rcons::hierarchy::enumerate_witnesses(type, n, kind, max_count);
  std::printf("%llu %s witnesses at n=%d (%llu canonical assignments "
              "tried); showing %zu:\n",
              static_cast<unsigned long long>(e.total_found),
              kind_name.c_str(), n,
              static_cast<unsigned long long>(e.assignments_tried),
              e.witnesses.size());
  for (const auto& w : e.witnesses) {
    std::printf("  %s\n", w.describe(type).c_str());
  }
  return 0;
}

int cmd_critical(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto report =
      rcons::valency::find_critical_execution(protocol, inputs);
  if (!report.has_value()) {
    return fail("no critical execution found (not bivalent?)");
  }
  std::printf("%s", report->render(protocol).c_str());
  const std::string failures =
      rcons::valency::verify_section3_lemmas(protocol, *report);
  std::printf("section 3 lemma check: %s\n",
              failures.empty() ? "all verified" : failures.c_str());
  return 0;
}

int cmd_chain(rcons::exec::Protocol& protocol) {
  std::vector<int> inputs(static_cast<std::size_t>(protocol.process_count()),
                          1);
  inputs[0] = 0;
  const auto chain =
      rcons::valency::run_theorem13_chain(protocol, inputs);
  std::printf("%s", chain.render(protocol).c_str());
  return chain.reached_recording ? 0 : 1;
}

int cmd_replay(const char* file) {
  std::ifstream in(file);
  if (!in) return fail(std::string("cannot read '") + file + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = rcons::trace::parse_counterexample(buffer.str());
  if (!parsed.ok()) {
    return fail(std::string(file) + ":" +
                std::to_string(parsed.error_line) + ": " + parsed.error);
  }
  const rcons::trace::Counterexample& c = *parsed.trace;
  if (c.protocol_spec.empty()) {
    return fail("trace carries no 'protocol:' line; replay cannot rebuild "
                "the protocol");
  }
  std::vector<std::string> tokens;
  std::istringstream spec_stream(c.protocol_spec);
  for (std::string t; spec_stream >> t;) tokens.push_back(t);
  std::string error;
  auto protocol = rcons::serve::make_protocol(tokens, &error);
  if (!protocol) return fail(error);
  const rcons::trace::ReplayResult r = rcons::trace::replay(*protocol, c);
  std::printf("%s counterexample, protocol: %s\n",
              rcons::trace::counterexample_kind_name(c.kind),
              c.protocol_spec.c_str());
  if (!c.rule.empty()) std::printf("  rule: %s\n", c.rule.c_str());
  if (!c.note.empty()) std::printf("  note: %s\n", c.note.c_str());
  std::printf("%s", rcons::trace::render_timeline(*protocol,
                                                  r.timeline).c_str());
  std::printf("captured verdict: %s\n", c.verdict.c_str());
  std::printf("replayed verdict: %s\n", r.verdict.c_str());
  std::printf("captured hash: %016llx\n",
              static_cast<unsigned long long>(c.state_hash));
  std::printf("replayed hash: %016llx\n",
              static_cast<unsigned long long>(r.state_hash));
  const bool ok = r.matches(c);
  std::printf("round-trip: %s\n", ok ? "OK" : "MISMATCH");
  return ok ? 0 : 1;
}

int cmd_lint(int argc, char** argv) {
  using rcons::analysis::Severity;

  Severity threshold = Severity::kError;
  std::vector<std::string> targets;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--rules") {
      if (g_json) {
        std::printf("%s\n", rcons::analysis::render_rules_json().c_str());
      } else {
        std::printf("%s", rcons::analysis::render_rule_table().c_str());
      }
      return 0;
    }
    if (arg.rfind("--explain=", 0) == 0) {
      return cmd_explain(arg.substr(10));
    }
    if (arg.rfind("--threshold=", 0) == 0) {
      if (!rcons::serve::parse_severity(arg.substr(12), &threshold)) {
        return fail("unknown threshold '" + arg.substr(12) + "'");
      }
    } else if (arg == "protocol") {
      // The rest of the argv names one protocol; lint it and stop.
      std::string error;
      auto protocol = make_protocol(argc - i - 1, argv + i + 1, &error);
      if (!protocol) return fail(error);
      std::string spec;
      for (int j = i + 1; j < argc; ++j) {
        if (j > i + 1) spec += ' ';
        spec += argv[j];
      }
      return emit(rcons::serve::run_lint_protocol(*protocol, spec,
                                                  threshold,
                                                  engine_options()));
    } else if (arg.rfind("--", 0) == 0) {
      return fail("unknown lint flag '" + arg + "'");
    } else {
      targets.push_back(arg);
    }
  }
  if (targets.empty()) {
    return fail("lint needs at least one <type>, .type file, or "
                "'protocol <spec...>'");
  }
  return emit(rcons::serve::run_lint_types(targets, threshold,
                                           engine_options()));
}

/// `order <a> <b>` / `order --all <targets...>`: certified simulation
/// analysis over a pair or a whole catalog (DESIGN.md §13).
int cmd_order(int argc, char** argv) {
  int max_n = 5;
  std::string dot_out;
  bool all = false;
  std::vector<std::string> targets;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--all") {
      all = true;
      continue;
    }
    if (arg.rfind("--max-n=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(8), 2,
                                      std::numeric_limits<int>::max(),
                                      &max_n)) {
        return fail("--max-n wants a level >= 2");
      }
      continue;
    }
    if (arg.rfind("--dot-out=", 0) == 0) {
      dot_out = arg.substr(10);
      if (dot_out.empty()) return fail("--dot-out wants a file");
      continue;
    }
    if (arg.rfind("--", 0) == 0) {
      return fail("unknown order flag '" + arg + "'");
    }
    targets.push_back(arg);
  }
  if (!all) {
    if (targets.size() != 2 || !dot_out.empty()) {
      return fail("order <a> <b>, or order --all <targets...> "
                  "[--max-n=N] [--dot-out=FILE]");
    }
    ObjectType a;
    ObjectType b;
    std::string error;
    if (!rcons::serve::resolve_type(targets[0], &a, &error)) {
      return fail(error);
    }
    if (!rcons::serve::resolve_type(targets[1], &b, &error)) {
      return fail(error);
    }
    return emit(rcons::serve::run_order(a, b, targets[0], targets[1]));
  }
  // Catalog mode: directory targets expand to their *.type files, sorted
  // so the node order (and thus the rendered document) is deterministic.
  std::vector<std::string> expanded;
  for (const std::string& target : targets) {
    std::error_code ec;
    if (std::filesystem::is_directory(target, ec)) {
      std::vector<std::string> files;
      for (const auto& entry :
           std::filesystem::directory_iterator(target, ec)) {
        if (entry.path().extension() == ".type") {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      expanded.insert(expanded.end(), files.begin(), files.end());
    } else {
      expanded.push_back(target);
    }
  }
  if (expanded.size() < 2) {
    return fail("order --all wants at least two types (directories expand "
                "to their *.type files)");
  }
  std::vector<ObjectType> types(expanded.size());
  for (std::size_t i = 0; i < expanded.size(); ++i) {
    std::string error;
    if (!rcons::serve::resolve_type(expanded[i], &types[i], &error)) {
      return fail(error);
    }
  }
  const rcons::reduction::VerdictCache cache(
      g_cache_on ? (g_cache_dir.empty()
                        ? rcons::reduction::VerdictCache::default_directory()
                        : g_cache_dir)
                 : std::string());
  rcons::serve::EngineOptions options = engine_options();
  options.cache = &cache;
  const rcons::serve::CommandResult result =
      rcons::serve::run_order_catalog(types, expanded, max_n, options);
  if (result.exit_code != 2 && !dot_out.empty() &&
      spill_file(dot_out, result.dot)) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", dot_out.c_str());
  }
  return emit(result);
}

int cmd_search(int restarts, int mutations, std::uint64_t seed, int shards,
               int shard_index) {
  rcons::hierarchy::MachineSearchOptions options;
  options.restarts = restarts;
  options.mutations_per_restart = mutations;
  options.seed = seed;
  options.threads = g_threads;
  options.use_bounds = g_bounds_on;
  options.shards = shards;
  options.shard_index = shard_index;
  const auto r = rcons::hierarchy::search_gap_machines(options);
  if (shards > 1) {
    std::printf("shard %d of %d: climbed %llu of %d restarts\n", shard_index,
                shards, static_cast<unsigned long long>(r.restarts_run),
                restarts);
  }
  if (r.best_restart < 0) {
    std::printf("evaluated %llu machines; no restart in this shard\n",
                static_cast<unsigned long long>(r.machines_evaluated));
    return 0;
  }
  std::printf("evaluated %llu machines; best gap %d from restart %d "
              "(discerning %s, recording %s)\n",
              static_cast<unsigned long long>(r.machines_evaluated),
              r.best_gap, r.best_restart,
              r.best_profile.discerning.to_string().c_str(),
              r.best_profile.recording.to_string().c_str());
  if (r.best_gap >= 1) {
    std::printf("%s", rcons::spec::serialize_type(r.best_type).c_str());
  }
  return 0;
}

/// `hunt`: one shard of the checkpointable landscape campaign
/// (src/campaign, DESIGN.md §15).
int cmd_hunt(int argc, char** argv) {
  rcons::campaign::CampaignOptions options;
  int shards = 1;
  int shard_index = 0;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checkpoint-dir=", 0) == 0) {
      options.checkpoint_dir = arg.substr(17);
      if (options.checkpoint_dir.empty()) {
        return fail("--checkpoint-dir wants a directory");
      }
    } else if (arg.rfind("--shards=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(9), 1, 1 << 20, &shards)) {
        return fail("--shards wants a count >= 1");
      }
    } else if (arg.rfind("--shard=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(8), 0, (1 << 20) - 1,
                                      &shard_index)) {
        return fail("--shard wants an index >= 0");
      }
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg.rfind("--max-values=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(13), 1, 64,
                                      &options.box.max_values)) {
        return fail("--max-values wants a count in [1, 64]");
      }
    } else if (arg.rfind("--max-ops=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(10), 1, 64,
                                      &options.box.max_ops)) {
        return fail("--max-ops wants a count in [1, 64]");
      }
    } else if (arg.rfind("--max-responses=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(16), 1, 64,
                                      &options.box.max_responses)) {
        return fail("--max-responses wants a count in [1, 64]");
      }
    } else if (arg.rfind("--max-n=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(8), 1, 1 << 20,
                                      &options.max_n)) {
        return fail("--max-n wants a level >= 1");
      }
    } else if (arg.rfind("--budget=", 0) == 0) {
      if (!rcons::util::parse_uint64_arg(arg.substr(9), &options.budget)) {
        return fail("--budget wants a count (0 = unbounded)");
      }
    } else if (arg.rfind("--checkpoint-interval=", 0) == 0) {
      if (!rcons::util::parse_uint64_arg(arg.substr(22),
                                         &options.checkpoint_interval) ||
          options.checkpoint_interval == 0) {
        return fail("--checkpoint-interval wants a count >= 1");
      }
    } else {
      return fail("unknown hunt flag '" + arg + "'");
    }
  }
  if (options.checkpoint_dir.empty()) {
    return fail("hunt wants --checkpoint-dir=DIR");
  }
  if (shard_index >= shards) {
    return fail("hunt wants --shard < --shards");
  }
  options.shards = shards;
  options.shard_index = shard_index;
  options.threads = g_threads;
  options.reduce = g_reduce;
  options.use_bounds = g_bounds_on;
  options.backend = g_backend;
  const rcons::reduction::VerdictCache cache(
      g_cache_on ? (g_cache_dir.empty()
                        ? rcons::reduction::VerdictCache::default_directory()
                        : g_cache_dir)
                 : std::string());
  options.cache = &cache;

  // Deterministic crash injection for the kill/resume battery: SIGKILL —
  // not exit() — after the Nth visited candidate, so the process dies with
  // no destructors, flushes, or atexit handlers, exactly like a power cut.
  if (const char* kill_after = std::getenv("RCONS_HUNT_KILL_AFTER")) {
    std::uint64_t kill_at = 0;
    if (!rcons::util::parse_uint64_arg(kill_after, &kill_at) ||
        kill_at == 0) {
      return fail("RCONS_HUNT_KILL_AFTER wants a candidate count >= 1");
    }
    options.after_candidate = [kill_at](std::uint64_t visited) {
      if (visited >= kill_at) std::raise(SIGKILL);
    };
  }

  const rcons::campaign::CampaignResult r =
      rcons::campaign::run_campaign(options);
  if (!r.ok) return fail(r.error);
  if (g_json) {
    std::string out = "{\"command\":\"hunt\",\"shard\":" +
                      std::to_string(shard_index) +
                      ",\"shards\":" + std::to_string(shards);
    out += std::string(",\"complete\":") + (r.complete ? "true" : "false");
    out += std::string(",\"resumed\":") + (r.resumed ? "true" : "false");
    if (!r.resume_note.empty()) {
      out += ",\"resume_note\":\"" + rcons::json_escape(r.resume_note) + "\"";
    }
    out += ",\"visited\":" + std::to_string(r.visited);
    out += ",\"profiled\":" + std::to_string(r.profiled);
    out += ",\"shard_skipped\":" + std::to_string(r.shard_skipped);
    out += ",\"isomorph_skipped\":" + std::to_string(r.isomorph_skipped);
    out += ",\"records\":" + std::to_string(r.checkpoint.records.size());
    out += ",\"db\":\"" + rcons::json_escape(r.db_path) + "\"}";
    std::printf("%s\n", out.c_str());
  } else {
    if (!r.resume_note.empty()) {
      std::printf("resume: %s\n", r.resume_note.c_str());
    }
    std::printf("shard %d of %d: %s; visited %llu, profiled %llu "
                "(%llu other-shard, %llu isomorph), %zu records in %s\n",
                shard_index, shards,
                r.complete ? "complete" : "stopped (resumable)",
                static_cast<unsigned long long>(r.visited),
                static_cast<unsigned long long>(r.profiled),
                static_cast<unsigned long long>(r.shard_skipped),
                static_cast<unsigned long long>(r.isomorph_skipped),
                r.checkpoint.records.size(), r.db_path.c_str());
  }
  // An incomplete shard proves nothing about the box either way — the
  // INCONCLUSIVE exit, like a --max-states-truncated verify.
  return r.complete ? 0 : 3;
}

/// `serve`: the long-running verdict daemon (DESIGN.md §12). Runs until
/// SIGINT/SIGTERM; everything it says goes to stderr, so stdout stays
/// pure under --format=json (it simply stays empty).
int cmd_serve(int argc, char** argv) {
  std::string socket_path;
  int port = -1;
  int workers = 4;
  std::size_t queue_depth = 64;
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
      if (socket_path.empty()) return fail("--socket wants a path");
      continue;
    }
    if (arg.rfind("--port=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(7), 0, 65535, &port)) {
        return fail("--port wants a port number (0 = ephemeral)");
      }
      continue;
    }
    if (arg.rfind("--workers=", 0) == 0) {
      if (!rcons::util::parse_int_arg(arg.substr(10), 1, 1024, &workers)) {
        return fail("--workers wants a count in [1, 1024]");
      }
      continue;
    }
    if (arg.rfind("--queue-depth=", 0) == 0) {
      if (!rcons::util::parse_size_arg(
              arg.substr(14), 1, std::numeric_limits<std::size_t>::max(),
              &queue_depth)) {
        return fail("--queue-depth wants a count >= 1");
      }
      continue;
    }
    return fail("unknown serve flag '" + arg + "'");
  }
  if (socket_path.empty() == (port < 0)) {
    return fail("serve wants exactly one of --socket=PATH or --port=N");
  }

  rcons::serve::ServiceOptions service_options;
  service_options.default_threads = g_threads;
  service_options.reduce = g_reduce;
  service_options.bounds = g_bounds_on;
  service_options.backend = g_backend;
  service_options.max_states_cap = g_max_states;
  if (g_cache_on) {
    service_options.cache_dir =
        g_cache_dir.empty()
            ? rcons::reduction::VerdictCache::default_directory()
            : g_cache_dir;
  }
  rcons::serve::Service service(std::move(service_options));

  rcons::serve::ServerOptions server_options;
  server_options.unix_path = socket_path;
  server_options.tcp_port = port;
  server_options.workers = workers;
  server_options.queue_depth = queue_depth;

  // Shutdown signals are handled synchronously via sigwait; the mask is
  // set before the server spawns threads so they all inherit it. SIGPIPE
  // is ignored: a client hanging up mid-response must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  rcons::serve::Server server(service, server_options);
  std::string error;
  if (!server.start(&error)) return fail(error);
  if (socket_path.empty()) {
    std::fprintf(stderr,
                 "rcons_cli: serving on 127.0.0.1:%d (workers=%d, "
                 "queue-depth=%zu)\n",
                 server.port(), workers, queue_depth);
  } else {
    std::fprintf(stderr,
                 "rcons_cli: serving on unix:%s (workers=%d, "
                 "queue-depth=%zu)\n",
                 socket_path.c_str(), workers, queue_depth);
  }
  int signal_number = 0;
  sigwait(&mask, &signal_number);
  std::fprintf(stderr, "rcons_cli: signal %d, shutting down\n",
               signal_number);
  server.stop();
  server.wait();
  return 0;
}

int dispatch(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: rcons_cli "
                 "list|show|export|dot|profile|witnesses|verify|critical|"
                 "search|hunt|lint|explain|order|replay|serve ...\n"
                 "(see the header of tools/rcons_cli.cpp)\n");
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "list") return cmd_list();
  if (cmd == "lint") return cmd_lint(argc - 2, argv + 2);
  if (cmd == "order") return cmd_order(argc - 2, argv + 2);
  if (cmd == "serve") return cmd_serve(argc - 2, argv + 2);
  if (cmd == "explain") {
    if (argc < 3) return fail("explain <rule-id> (e.g. TS001, RC002, SA007)");
    return cmd_explain(argv[2]);
  }
  if (cmd == "replay") {
    if (argc < 3) return fail("replay <file.trace>");
    return cmd_replay(argv[2]);
  }
  if (cmd == "hunt") return cmd_hunt(argc - 2, argv + 2);
  if (cmd == "search") {
    int restarts = 10;
    int mutations = 200;
    std::uint64_t seed = 1;
    int shards = 1;
    int shard_index = 0;
    std::vector<const char*> positional;
    for (int i = 2; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--shards=", 0) == 0) {
        if (!rcons::util::parse_int_arg(arg.substr(9), 1, 1 << 20,
                                        &shards)) {
          return fail("--shards wants a count >= 1");
        }
      } else if (arg.rfind("--shard=", 0) == 0) {
        if (!rcons::util::parse_int_arg(arg.substr(8), 0, (1 << 20) - 1,
                                        &shard_index)) {
          return fail("--shard wants an index >= 0");
        }
      } else if (arg.rfind("--", 0) == 0) {
        return fail("unknown search flag '" + arg + "'");
      } else {
        positional.push_back(argv[i]);
      }
    }
    if (shard_index >= shards) return fail("search wants --shard < --shards");
    if (positional.size() > 0 &&
        !rcons::util::parse_int_arg(positional[0], 1,
                                    std::numeric_limits<int>::max(),
                                    &restarts)) {
      return fail("search [restarts >= 1] [mutations >= 1] [seed]");
    }
    if (positional.size() > 1 &&
        !rcons::util::parse_int_arg(positional[1], 1,
                                    std::numeric_limits<int>::max(),
                                    &mutations)) {
      return fail("search [restarts >= 1] [mutations >= 1] [seed]");
    }
    if (positional.size() > 2 &&
        !rcons::util::parse_uint64_arg(positional[2], &seed)) {
      return fail("search seed wants an unsigned 64-bit number");
    }
    return cmd_search(restarts, mutations, seed, shards, shard_index);
  }
  if (cmd == "verify" || cmd == "critical" || cmd == "chain") {
    std::string error;
    auto protocol = make_protocol(argc - 2, argv + 2, &error);
    if (!protocol) return fail(error);
    if (cmd == "verify") {
      std::string spec;
      for (int i = 2; i < argc; ++i) {
        if (i > 2) spec += ' ';
        spec += argv[i];
      }
      return emit(rcons::serve::run_verify(*protocol, spec,
                                           engine_options()));
    }
    if (cmd == "chain") return cmd_chain(*protocol);
    return cmd_critical(*protocol);
  }

  if (argc < 3) return fail("command '" + cmd + "' needs a type argument");
  ObjectType type;
  std::string error;
  if (!rcons::serve::resolve_type(argv[2], &type, &error)) {
    return fail(error);
  }

  if (cmd == "show") {
    std::printf("%s", type.describe().c_str());
    return 0;
  }
  if (cmd == "export") {
    std::printf("%s", rcons::spec::serialize_type(type).c_str());
    return 0;
  }
  if (cmd == "dot") {
    std::printf("%s", type.to_dot().c_str());
    return 0;
  }
  if (cmd == "profile") {
    int max_n = 5;
    if (argc > 3 &&
        !rcons::util::parse_int_arg(argv[3], 1,
                                    std::numeric_limits<int>::max(),
                                    &max_n)) {
      return fail("profile <type> [max_n >= 1]");
    }
    return cmd_profile(type, max_n);
  }
  if (cmd == "witnesses") {
    if (argc < 4) return fail("witnesses <type> <n> [kind] [max]");
    int n = 0;
    if (!rcons::util::parse_int_arg(argv[3], 2, 12, &n)) {
      return fail("witnesses wants an n in [2, 12]");
    }
    std::size_t max_count = 8;
    if (argc > 5 &&
        !rcons::util::parse_size_arg(
            argv[5], 1, std::numeric_limits<std::size_t>::max(),
            &max_count)) {
      return fail("witnesses max wants a count >= 1");
    }
    return cmd_witnesses(type, n, argc > 4 ? argv[4] : "discerning",
                         max_count);
  }
  return fail("unknown command '" + cmd + "'");
}

}  // namespace

int main(int argc, char** argv) {
  // Extract the global flags (any position) before dispatch.
  g_threads = rcons::util::hardware_threads();
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      // The shared contract (rcons_cli, serve, rcons_loadgen): 0 spells
      // "hardware thread count"; negative counts and non-numbers are
      // usage errors. Pinned by tests/cli_json_test.cpp.
      int threads = 0;
      if (!rcons::util::parse_int_arg(arg.substr(10), 0,
                                      std::numeric_limits<int>::max(),
                                      &threads)) {
        return fail("--threads wants a count >= 0");
      }
      g_threads = threads == 0 ? rcons::util::hardware_threads() : threads;
      continue;
    }
    if (arg.rfind("--max-states=", 0) == 0) {
      if (!rcons::util::parse_size_arg(
              arg.substr(13), 1, std::numeric_limits<std::size_t>::max(),
              &g_max_states)) {
        return fail("--max-states wants a state count >= 1");
      }
      continue;
    }
    if (arg.rfind("--trace-out=", 0) == 0) {
      g_trace_out = arg.substr(12);
      if (g_trace_out.empty()) return fail("--trace-out wants a directory");
      continue;
    }
    if (arg.rfind("--metrics-out=", 0) == 0) {
      g_metrics_out = arg.substr(14);
      if (g_metrics_out.empty()) return fail("--metrics-out wants a file");
      continue;
    }
    if (arg.rfind("--spans-out=", 0) == 0) {
      g_spans_out = arg.substr(12);
      if (g_spans_out.empty()) return fail("--spans-out wants a file");
      continue;
    }
    if (arg.rfind("--reduce=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "symmetry") {
        g_reduce = true;
      } else if (value == "none") {
        g_reduce = false;
      } else {
        return fail("unknown reduction '" + value + "' (symmetry|none)");
      }
      continue;
    }
    if (arg.rfind("--cache=", 0) == 0) {
      const std::string value = arg.substr(8);
      if (value == "on") {
        g_cache_on = true;
      } else if (value == "off") {
        g_cache_on = false;
      } else {
        return fail("unknown cache mode '" + value + "' (on|off)");
      }
      continue;
    }
    if (arg.rfind("--bounds=", 0) == 0) {
      const std::string value = arg.substr(9);
      if (value == "on") {
        g_bounds_on = true;
      } else if (value == "off") {
        g_bounds_on = false;
      } else {
        return fail("unknown bounds mode '" + value + "' (on|off)");
      }
      continue;
    }
    if (arg.rfind("--cache-dir=", 0) == 0) {
      g_cache_dir = arg.substr(12);
      if (g_cache_dir.empty()) return fail("--cache-dir wants a directory");
      continue;
    }
    if (arg.rfind("--backend=", 0) == 0) {
      const std::string value = arg.substr(10);
      if (!rcons::exec::parse_backend(value, &g_backend)) {
        return fail("unknown backend '" + value + "' (interp|aot)");
      }
      continue;
    }
    if (arg == "--format=json") {
      g_json = true;
      continue;
    }
    if (arg == "--format=text") {
      g_json = false;
      continue;
    }
    if (arg.rfind("--format=", 0) == 0) {
      return fail("unknown format '" + arg.substr(9) + "' (json|text)");
    }
    args.push_back(argv[i]);
  }
  args.push_back(nullptr);
  argc = static_cast<int>(args.size()) - 1;
  argv = args.data();
  const int code = dispatch(argc, argv);
  // Metrics spill even on failure exits: the observability of a run that
  // found a violation (or died inconclusive) is the interesting case.
  if (!g_metrics_out.empty() &&
      spill_file(g_metrics_out, rcons::trace::metrics().to_json() + "\n")) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", g_metrics_out.c_str());
  }
  if (!g_spans_out.empty() &&
      spill_file(g_spans_out,
                 rcons::trace::metrics().spans_to_chrome_json())) {
    std::fprintf(stderr, "rcons_cli: wrote %s\n", g_spans_out.c_str());
  }
  return code;
}
