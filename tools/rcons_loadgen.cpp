// rcons_loadgen — closed-loop load generator for the rcons-serve daemon
// (DESIGN.md §12).
//
//   rcons_loadgen (--socket=PATH | --port=N)
//                 [--clients=N] [--requests=N]
//                 [--command=ping|profile|verify|lint]
//                 [--target=TYPE] [--spec="cas 2"] [--max-n=N]
//                 [--metrics-out=F] [--spans-out=F]
//
// Spawns N clients, each with its own connection, each sending
// `--requests` requests back-to-back (one outstanding per connection) and
// timing every round trip. Prints one JSON summary line to stdout:
// throughput (requests/s), latency percentiles (p50/p90/p99/max in
// microseconds), and a per-status response census. After the run it asks
// the daemon for its metrics and spans documents and writes them to the
// --*-out files (the CI serve-roundtrip job validates both and gates on
// zero admission rejections).
//
// Exit code: 0 when every request got a response and none came back with
// status "error"; 1 otherwise. "violation"/"inconclusive" statuses are
// legitimate verdicts, not load-generator failures.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/wire.hpp"
#include "util/numeric.hpp"
#include "util/socket.hpp"
#include "util/strings.hpp"

namespace {

struct Options {
  std::string socket_path;
  int port = -1;
  int clients = 8;
  int requests = 50;
  std::string command = "ping";
  std::string target;
  std::string spec;
  int max_n = 0;
  std::string metrics_out;
  std::string spans_out;
};

int fail(const std::string& message) {
  std::fprintf(stderr, "rcons_loadgen: %s\n", message.c_str());
  return 2;
}

int connect(const Options& options) {
  return options.socket_path.empty()
             ? rcons::util::connect_tcp(options.port)
             : rcons::util::connect_unix(options.socket_path);
}

/// Builds the request line (without the newline) for client `client`,
/// request `seq`. Ids are unique per request so responses correlate.
std::string build_request(const Options& options, int client, int seq) {
  std::string line = "{\"id\":\"c" + std::to_string(client) + "-" +
                     std::to_string(seq) + "\",\"command\":\"" +
                     rcons::json_escape(options.command) + "\"";
  if (!options.target.empty()) {
    line += ",\"target\":\"" + rcons::json_escape(options.target) + "\"";
  }
  if (!options.spec.empty()) {
    line += ",\"spec\":\"" + rcons::json_escape(options.spec) + "\"";
  }
  if (options.max_n > 0) {
    line += ",\"max_n\":" + std::to_string(options.max_n);
  }
  return line + "}";
}

/// Pulls `"status":"<value>"` out of a response line ("" if absent).
std::string response_status(const std::string& line) {
  const std::string needle = "\"status\":\"";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = at + needle.size();
  const std::size_t end = line.find('"', start);
  if (end == std::string::npos) return "";
  return line.substr(start, end - start);
}

struct ClientTally {
  std::vector<std::int64_t> latencies_us;
  std::size_t ok = 0, violation = 0, error = 0, inconclusive = 0;
  std::size_t transport_errors = 0;
};

void run_client(const Options& options, int client, ClientTally* tally) {
  const int fd = connect(options);
  if (fd < 0) {
    tally->transport_errors += static_cast<std::size_t>(options.requests);
    return;
  }
  rcons::util::LineReader reader(fd, 1 << 20);
  for (int seq = 0; seq < options.requests; ++seq) {
    const std::string request = build_request(options, client, seq) + "\n";
    const auto sent = std::chrono::steady_clock::now();
    if (!rcons::util::write_all(fd, request)) {
      tally->transport_errors +=
          static_cast<std::size_t>(options.requests - seq);
      break;
    }
    std::string line;
    if (reader.read_line(&line) != rcons::util::LineReader::Status::kLine) {
      tally->transport_errors +=
          static_cast<std::size_t>(options.requests - seq);
      break;
    }
    const auto received = std::chrono::steady_clock::now();
    tally->latencies_us.push_back(
        std::chrono::duration_cast<std::chrono::microseconds>(received -
                                                              sent)
            .count());
    const std::string status = response_status(line);
    if (status == "ok") ++tally->ok;
    else if (status == "violation") ++tally->violation;
    else if (status == "inconclusive") ++tally->inconclusive;
    else ++tally->error;
  }
  rcons::util::shutdown_and_close(fd);
}

/// One observability request over a fresh connection; returns the
/// response's "result" payload (which render_response puts last, so the
/// payload is everything after the first `"result":` up to the line's
/// closing brace).
bool fetch_document(const Options& options, const std::string& command,
                    std::string* out) {
  const int fd = connect(options);
  if (fd < 0) return false;
  const std::string request = "{\"command\":\"" + command + "\"}\n";
  if (!rcons::util::write_all(fd, request)) {
    rcons::util::shutdown_and_close(fd);
    return false;
  }
  rcons::util::LineReader reader(fd, 64u << 20);
  std::string line;
  const auto status = reader.read_line(&line);
  rcons::util::shutdown_and_close(fd);
  if (status != rcons::util::LineReader::Status::kLine) return false;
  const std::string needle = "\"result\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos || line.empty() || line.back() != '}') {
    return false;
  }
  *out = line.substr(at + needle.size(),
                     line.size() - (at + needle.size()) - 1);
  return true;
}

bool spill(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content << '\n';
  return true;
}

std::int64_t percentile(std::vector<std::int64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](std::size_t prefix) {
      return arg.substr(prefix);
    };
    if (arg.rfind("--socket=", 0) == 0) options.socket_path = value(9);
    else if (arg.rfind("--port=", 0) == 0) {
      if (!rcons::util::parse_int_arg(value(7), 0, 65535, &options.port)) {
        return fail("--port wants a port number in [0, 65535]");
      }
    } else if (arg.rfind("--clients=", 0) == 0) {
      if (!rcons::util::parse_int_arg(value(10), 1,
                                      std::numeric_limits<int>::max(),
                                      &options.clients)) {
        return fail("--clients wants a count >= 1");
      }
    } else if (arg.rfind("--requests=", 0) == 0) {
      if (!rcons::util::parse_int_arg(value(11), 1,
                                      std::numeric_limits<int>::max(),
                                      &options.requests)) {
        return fail("--requests wants a count >= 1");
      }
    } else if (arg.rfind("--command=", 0) == 0) {
      options.command = value(10);
    } else if (arg.rfind("--target=", 0) == 0) {
      options.target = value(9);
    } else if (arg.rfind("--spec=", 0) == 0) {
      options.spec = value(7);
    } else if (arg.rfind("--max-n=", 0) == 0) {
      if (!rcons::util::parse_int_arg(value(8), 1,
                                      std::numeric_limits<int>::max(),
                                      &options.max_n)) {
        return fail("--max-n wants a level >= 1");
      }
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      options.metrics_out = value(14);
    } else if (arg.rfind("--spans-out=", 0) == 0) {
      options.spans_out = value(12);
    } else {
      return fail("unknown flag '" + arg + "'");
    }
  }
  if (options.socket_path.empty() == (options.port < 0)) {
    return fail("wants exactly one of --socket=PATH or --port=N");
  }
  if (options.clients < 1 || options.requests < 1) {
    return fail("--clients and --requests want counts >= 1");
  }

  std::vector<ClientTally> tallies(
      static_cast<std::size_t>(options.clients));
  std::vector<std::thread> threads;
  const auto started = std::chrono::steady_clock::now();
  for (int c = 0; c < options.clients; ++c) {
    threads.emplace_back(run_client, options, c,
                         &tallies[static_cast<std::size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  const auto finished = std::chrono::steady_clock::now();
  const std::int64_t wall_us =
      std::chrono::duration_cast<std::chrono::microseconds>(finished -
                                                            started)
          .count();

  ClientTally total;
  for (const auto& t : tallies) {
    total.latencies_us.insert(total.latencies_us.end(),
                              t.latencies_us.begin(),
                              t.latencies_us.end());
    total.ok += t.ok;
    total.violation += t.violation;
    total.error += t.error;
    total.inconclusive += t.inconclusive;
    total.transport_errors += t.transport_errors;
  }
  std::sort(total.latencies_us.begin(), total.latencies_us.end());
  const double rps =
      wall_us > 0 ? static_cast<double>(total.latencies_us.size()) * 1e6 /
                        static_cast<double>(wall_us)
                  : 0.0;
  std::printf(
      "{\"command\":\"%s\",\"clients\":%d,\"requests_per_client\":%d,"
      "\"responses\":%zu,\"wall_us\":%lld,\"rps\":%.1f,"
      "\"latency_us\":{\"p50\":%lld,\"p90\":%lld,\"p99\":%lld,"
      "\"max\":%lld},\"status\":{\"ok\":%zu,\"violation\":%zu,"
      "\"inconclusive\":%zu,\"error\":%zu},\"transport_errors\":%zu}\n",
      rcons::json_escape(options.command).c_str(), options.clients,
      options.requests, total.latencies_us.size(),
      static_cast<long long>(wall_us), rps,
      static_cast<long long>(percentile(total.latencies_us, 0.50)),
      static_cast<long long>(percentile(total.latencies_us, 0.90)),
      static_cast<long long>(percentile(total.latencies_us, 0.99)),
      total.latencies_us.empty() ? 0LL
                                 : static_cast<long long>(
                                       total.latencies_us.back()),
      total.ok, total.violation, total.inconclusive, total.error,
      total.transport_errors);

  bool spill_failed = false;
  if (!options.metrics_out.empty()) {
    std::string doc;
    if (!fetch_document(options, "metrics", &doc) ||
        !spill(options.metrics_out, doc)) {
      std::fprintf(stderr, "rcons_loadgen: cannot fetch/write metrics\n");
      spill_failed = true;
    }
  }
  if (!options.spans_out.empty()) {
    std::string doc;
    if (!fetch_document(options, "spans", &doc) ||
        !spill(options.spans_out, doc)) {
      std::fprintf(stderr, "rcons_loadgen: cannot fetch/write spans\n");
      spill_failed = true;
    }
  }
  return (total.error > 0 || total.transport_errors > 0 || spill_failed)
             ? 1
             : 0;
}
